//! Regular relations over `Σ*` of arity `s` — the relation layer of ECRPQ
//! (Barceló et al. \[8\], recalled in §1.3 and §7 of the paper).
//!
//! A regular relation is recognized by an automaton over the padded tuple
//! alphabet `(Σ ∪ {⊥})^s` where `⊥` only occurs in suffix positions (shorter
//! components are padded at the right end). Transition labels are symbolic
//! predicates so that equality and equal-length relations stay O(1)-sized
//! independently of |Σ|.

use cxrpq_graph::Symbol;

/// One component of a tuple-transition predicate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TupComp {
    /// This component reads the concrete symbol.
    Sym(Symbol),
    /// This component reads any symbol of Σ (components are independent).
    Any,
    /// This component is padded (`⊥`): its word has already ended.
    Pad,
}

/// A symbolic transition label of a relation automaton.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelLabel {
    /// A tuple of per-component predicates.
    Tuple(Vec<TupComp>),
    /// All components read the *same* (arbitrary) symbol of Σ — the loop of
    /// the equality relation, kept symbolic to avoid |Σ| blow-up.
    AllEqualSym,
}

impl RelLabel {
    /// Whether the label admits `tuple` (with `None` encoding ⊥).
    pub fn matches(&self, tuple: &[Option<Symbol>]) -> bool {
        match self {
            RelLabel::Tuple(comps) => {
                comps.len() == tuple.len()
                    && comps.iter().zip(tuple).all(|(c, t)| match (c, t) {
                        (TupComp::Sym(a), Some(b)) => a == b,
                        (TupComp::Any, Some(_)) => true,
                        (TupComp::Pad, None) => true,
                        _ => false,
                    })
            }
            RelLabel::AllEqualSym => {
                tuple.iter().all(Option::is_some) && tuple.windows(2).all(|w| w[0] == w[1])
            }
        }
    }
}

/// A regular relation of arity `s`, as an automaton with symbolic tuple
/// labels.
#[derive(Clone, Debug)]
pub struct RegularRelation {
    arity: usize,
    start: u32,
    finals: Vec<bool>,
    trans: Vec<Vec<(RelLabel, u32)>>,
}

impl RegularRelation {
    /// An automaton shell with `n` states (state 0 initial, none final).
    pub fn with_states(arity: usize, n: usize) -> Self {
        Self {
            arity,
            start: 0,
            finals: vec![false; n],
            trans: vec![Vec::new(); n],
        }
    }

    /// The arity `s`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The initial state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Whether `s` is final.
    pub fn is_final(&self, s: u32) -> bool {
        self.finals[s as usize]
    }

    /// Outgoing transitions of `s`.
    pub fn transitions(&self, s: u32) -> &[(RelLabel, u32)] {
        &self.trans[s as usize]
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.finals.len()
    }

    /// Marks a state final.
    pub fn set_final(&mut self, s: u32, f: bool) {
        self.finals[s as usize] = f;
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: u32, label: RelLabel, to: u32) {
        self.trans[from as usize].push((label, to));
    }

    /// The equality relation `{(u, …, u)}` of arity `s` (the relation class
    /// of `ECRPQ^er`).
    pub fn equality(arity: usize) -> Self {
        let mut r = Self::with_states(arity, 1);
        r.set_final(0, true);
        r.add_transition(0, RelLabel::AllEqualSym, 0);
        r
    }

    /// Whether this is structurally the all-words-equal relation (one final
    /// state whose only transition is an `AllEqualSym` self-loop) —
    /// detected so equality groups can share one member automaton as a
    /// necessary condition during pruning, and so `ECRPQ^er` membership is
    /// recognisable.
    pub fn is_equality(&self) -> bool {
        self.state_count() == 1
            && self.is_final(0)
            && self.transitions(0).len() == 1
            && matches!(self.transitions(0)[0], (RelLabel::AllEqualSym, 0))
    }

    /// The equal-length relation `{(u₁, …, u_s) : |u₁| = … = |u_s|}` — used
    /// by the paper's separation query `q_{aⁿbⁿ}` (Figure 6).
    pub fn equal_length(arity: usize) -> Self {
        let mut r = Self::with_states(arity, 1);
        r.set_final(0, true);
        r.add_transition(0, RelLabel::Tuple(vec![TupComp::Any; arity]), 0);
        r
    }

    /// The prefix relation `{(u, v) : u is a prefix of v}` (an example of a
    /// genuinely padded relation).
    pub fn prefix() -> Self {
        let mut r = Self::with_states(2, 2);
        r.set_final(0, true);
        r.set_final(1, true);
        r.add_transition(0, RelLabel::AllEqualSym, 0);
        r.add_transition(0, RelLabel::Tuple(vec![TupComp::Pad, TupComp::Any]), 1);
        r.add_transition(1, RelLabel::Tuple(vec![TupComp::Pad, TupComp::Any]), 1);
        r
    }

    /// Bounded Hamming distance: `{(u, v) : |u| = |v|, d_H(u, v) ≤ d}` —
    /// "approximate equality", an automatic relation the paper's ECRPQ class
    /// admits but CXRPQ cannot express (equality is the only inter-path
    /// comparison string variables provide).
    ///
    /// State `i` counts mismatches. The mismatch transition reads *any* pair
    /// of symbols; on equal symbols the equality self-loop also applies, and
    /// nondeterministic acceptance picks the thrifty run, so the automaton
    /// accepts exactly the pairs within distance `d`.
    pub fn hamming_leq(d: usize) -> Self {
        let mut r = Self::with_states(2, d + 1);
        for i in 0..=d {
            r.set_final(i as u32, true);
            r.add_transition(i as u32, RelLabel::AllEqualSym, i as u32);
            if i < d {
                r.add_transition(
                    i as u32,
                    RelLabel::Tuple(vec![TupComp::Any, TupComp::Any]),
                    (i + 1) as u32,
                );
            }
        }
        r
    }

    /// Bounded length difference: `{(u, v) : | |u| − |v| | ≤ d}` — a relaxed
    /// equal-length relation (the `d = 0` case is [`Self::equal_length`]).
    pub fn length_diff_leq(d: usize) -> Self {
        // State 0: both words still running. States 1..=d: first word ended,
        // counting the second's surplus; states d+1..=2d symmetrically.
        let mut r = Self::with_states(2, 2 * d + 1);
        for s in 0..(2 * d + 1) as u32 {
            r.set_final(s, true);
        }
        r.add_transition(0, RelLabel::Tuple(vec![TupComp::Any, TupComp::Any]), 0);
        for i in 0..d {
            let (from_r, to_r) = (if i == 0 { 0 } else { i as u32 }, (i + 1) as u32);
            r.add_transition(
                from_r,
                RelLabel::Tuple(vec![TupComp::Pad, TupComp::Any]),
                to_r,
            );
            let (from_l, to_l) = (if i == 0 { 0 } else { (d + i) as u32 }, (d + i + 1) as u32);
            r.add_transition(
                from_l,
                RelLabel::Tuple(vec![TupComp::Any, TupComp::Pad]),
                to_l,
            );
        }
        r
    }

    /// Whether the relation holds for concrete words (oracle used in tests):
    /// feeds the padded tuple word through the automaton.
    pub fn holds(&self, words: &[Vec<Symbol>]) -> bool {
        assert_eq!(words.len(), self.arity);
        let max = words.iter().map(Vec::len).max().unwrap_or(0);
        let mut states = vec![self.start];
        for i in 0..max {
            let tuple: Vec<Option<Symbol>> = words.iter().map(|w| w.get(i).copied()).collect();
            let mut next = Vec::new();
            for &s in &states {
                for (l, t) in self.transitions(s) {
                    if l.matches(&tuple) && !next.contains(t) {
                        next.push(*t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            states = next;
        }
        states.iter().any(|&s| self.is_final(s))
    }

    /// The reversal of the relation (needed for backward synchronized
    /// search): component words are read right-to-left, so padding moves to
    /// the front — the caller's backward search treats "not yet started"
    /// walkers exactly like forward "already finished" ones.
    pub fn reversed(&self) -> Self {
        let n = self.state_count();
        // Fresh start state n, ε-free construction: copy reversed
        // transitions, finals = {old start}, start connected by duplicating
        // outgoing (reversed) transitions of every old final.
        let mut r = Self::with_states(self.arity, n + 1);
        r.start = n as u32;
        for s in 0..n as u32 {
            for (l, t) in self.transitions(s) {
                r.add_transition(*t, l.clone(), s);
            }
        }
        // Transitions out of the fresh start mirror those out of old finals.
        let mut fresh: Vec<(RelLabel, u32)> = Vec::new();
        for f in 0..n as u32 {
            if self.is_final(f) {
                for (l, t) in r.transitions(f) {
                    fresh.push((l.clone(), *t));
                }
            }
        }
        for (l, t) in fresh {
            r.add_transition(n as u32, l, t);
        }
        r.finals[self.start as usize] = true;
        // The fresh start is final iff some original final coincides with
        // acceptance of the empty tuple word.
        if (0..n as u32).any(|f| self.is_final(f) && f == self.start) {
            r.finals[n] = true;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Vec<Symbol> {
        s.bytes().map(|b| Symbol((b - b'a') as u32)).collect()
    }

    #[test]
    fn equality_relation_holds() {
        let eq = RegularRelation::equality(3);
        assert!(eq.holds(&[w("ab"), w("ab"), w("ab")]));
        assert!(eq.holds(&[w(""), w(""), w("")]));
        assert!(!eq.holds(&[w("ab"), w("ab"), w("ba")]));
        assert!(!eq.holds(&[w("ab"), w("ab"), w("abb")]));
    }

    #[test]
    fn equal_length_relation_holds() {
        let el = RegularRelation::equal_length(2);
        assert!(el.holds(&[w("ab"), w("ba")]));
        assert!(el.holds(&[w(""), w("")]));
        assert!(!el.holds(&[w("ab"), w("b")]));
    }

    #[test]
    fn prefix_relation_holds() {
        let p = RegularRelation::prefix();
        assert!(p.holds(&[w("ab"), w("abba")]));
        assert!(p.holds(&[w(""), w("abba")]));
        assert!(p.holds(&[w("ab"), w("ab")]));
        assert!(!p.holds(&[w("ba"), w("abba")]));
        assert!(!p.holds(&[w("abba"), w("ab")]));
    }

    #[test]
    fn reversal_of_equality_is_equality() {
        let eq = RegularRelation::equality(2).reversed();
        assert!(eq.holds(&[w("ab"), w("ab")]));
        assert!(!eq.holds(&[w("ab"), w("ba")]));
        assert!(eq.holds(&[w(""), w("")]));
    }

    /// Front-padded feed: words aligned at their ends, ⊥ in prefix
    /// positions — the convolution a backward synchronized search produces.
    fn holds_front(r: &RegularRelation, words: &[Vec<Symbol>]) -> bool {
        let max = words.iter().map(Vec::len).max().unwrap_or(0);
        let mut states = vec![r.start()];
        for i in 0..max {
            let tuple: Vec<Option<Symbol>> = words
                .iter()
                .map(|w| {
                    let offset = max - w.len();
                    if i < offset {
                        None
                    } else {
                        Some(w[i - offset])
                    }
                })
                .collect();
            let mut next = Vec::new();
            for &s in &states {
                for (l, t) in r.transitions(s) {
                    if l.matches(&tuple) && !next.contains(t) {
                        next.push(*t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            states = next;
        }
        states.iter().any(|&s| r.is_final(s))
    }

    #[test]
    fn reversal_accepts_backward_feed() {
        // A backward search feeds the reversed relation the front-padded
        // convolution of the reversed words: (u, v) ∈ prefix iff the
        // reversed automaton accepts front-padded (uᴿ, vᴿ).
        let rev = |mut v: Vec<Symbol>| {
            v.reverse();
            v
        };
        let p_rev = RegularRelation::prefix().reversed();
        assert!(holds_front(&p_rev, &[rev(w("ab")), rev(w("abba"))]));
        assert!(!holds_front(&p_rev, &[rev(w("ba")), rev(w("abba"))]));
        assert!(holds_front(&p_rev, &[rev(w("ab")), rev(w("ab"))]));
        // Equality is its own reversal.
        let e_rev = RegularRelation::equality(2).reversed();
        assert!(holds_front(&e_rev, &[w("ab"), w("ab")]));
        assert!(!holds_front(&e_rev, &[w("ab"), w("ba")]));
    }

    #[test]
    fn hamming_relation_holds() {
        let h0 = RegularRelation::hamming_leq(0);
        assert!(h0.holds(&[w("abc"), w("abc")]));
        assert!(!h0.holds(&[w("abc"), w("abd")]));
        let h1 = RegularRelation::hamming_leq(1);
        assert!(h1.holds(&[w("abc"), w("abd")]));
        assert!(h1.holds(&[w("abc"), w("abc")])); // distance 0 ≤ 1
        assert!(!h1.holds(&[w("abc"), w("add")])); // distance 2
        assert!(!h1.holds(&[w("ab"), w("abc")])); // unequal lengths
        let h2 = RegularRelation::hamming_leq(2);
        assert!(h2.holds(&[w("abc"), w("add")]));
        assert!(!h2.holds(&[w("abc"), w("ddd")]));
        assert!(h2.holds(&[w(""), w("")]));
    }

    #[test]
    fn length_diff_relation_holds() {
        let d0 = RegularRelation::length_diff_leq(0);
        assert!(d0.holds(&[w("ab"), w("dc")]));
        assert!(!d0.holds(&[w("ab"), w("d")]));
        let d2 = RegularRelation::length_diff_leq(2);
        assert!(d2.holds(&[w("ab"), w("abcd")]));
        assert!(d2.holds(&[w("abcd"), w("ab")]));
        assert!(d2.holds(&[w(""), w("ab")]));
        assert!(!d2.holds(&[w("a"), w("abcd")]));
        assert!(!d2.holds(&[w("abcd"), w("a")]));
    }

    #[test]
    fn hamming_composes_with_sync_reversal() {
        // Reversal keeps the relation meaningful for backward search:
        // Hamming distance is symmetric under word reversal.
        let h1 = RegularRelation::hamming_leq(1).reversed();
        let rev = |mut v: Vec<Symbol>| {
            v.reverse();
            v
        };
        assert!(h1.holds(&[rev(w("abc")), rev(w("abd"))]));
        assert!(!h1.holds(&[rev(w("abc")), rev(w("add"))]));
    }

    #[test]
    fn label_matching() {
        let l = RelLabel::Tuple(vec![TupComp::Sym(Symbol(0)), TupComp::Pad]);
        assert!(l.matches(&[Some(Symbol(0)), None]));
        assert!(!l.matches(&[Some(Symbol(1)), None]));
        assert!(!l.matches(&[Some(Symbol(0)), Some(Symbol(0))]));
        assert!(RelLabel::AllEqualSym.matches(&[Some(Symbol(2)), Some(Symbol(2))]));
        assert!(!RelLabel::AllEqualSym.matches(&[Some(Symbol(2)), None]));
    }
}
