//! A concrete syntax for whole CXRPQ queries.
//!
//! ```text
//! # who talks to whom through a covert channel (Figure 2, G3)
//! strvars w                      # declare pure-equality variables
//! ans(v1, v2) <-
//!     (v1) -[ x{..+} ]-> (v2),
//!     (v2) -[ y{..+} ]-> (v1),
//!     (v1) -[ (x|y)+ ]-> (m),
//!     (v2) -[ (x|y)+ ]-> (m)
//! ```
//!
//! One rule per query: `ans(z̄) <- atom, …, atom` with atoms
//! `(src) -[ xregex ]-> (dst)`. `ans()` gives a Boolean query. `#` starts a
//! comment. The edge-label syntax is exactly `cxrpq-xregex`'s (which in turn
//! extends the classical syntax of `cxrpq-automata`).

use crate::cxrpq::{Cxrpq, CxrpqBuilder, CxrpqError};
use cxrpq_graph::Alphabet;
use std::fmt;

/// A parse error with position information.
#[derive(Debug)]
pub enum QueryTextError {
    /// Malformed query syntax at `(line, column)`.
    Syntax {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Description.
        message: String,
    },
    /// The atoms parsed but the query did not validate (edge-label parse
    /// error, invalid conjunctive xregex, unknown output variable).
    Build(CxrpqError),
}

impl fmt::Display for QueryTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryTextError::Syntax { line, col, message } => {
                write!(f, "{line}:{col}: {message}")
            }
            QueryTextError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryTextError {}

struct Scanner<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Self { text, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> QueryTextError {
        let consumed = &self.text[..self.pos];
        let line = consumed.matches('\n').count() + 1;
        let col = self.pos - consumed.rfind('\n').map_or(0, |i| i + 1) + 1;
        QueryTextError::Syntax {
            line,
            col,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    /// Skips whitespace and `#`-comments.
    fn skip_trivia(&mut self) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if self.rest().starts_with('#') {
                match self.rest().find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.text.len(),
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_trivia();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), QueryTextError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected {token:?}")))
        }
    }

    fn ident(&mut self) -> Result<&'a str, QueryTextError> {
        self.skip_trivia();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
            .map_or(rest.len(), |(i, _)| i);
        if end == 0 {
            return Err(self.error("expected an identifier"));
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    /// Consumes up to (excluding) the next occurrence of `delim`.
    fn until(&mut self, delim: &str) -> Result<&'a str, QueryTextError> {
        let rest = self.rest();
        match rest.find(delim) {
            Some(i) => {
                self.pos += i + delim.len();
                Ok(&rest[..i])
            }
            None => Err(self.error(format!("unterminated atom: missing {delim:?}"))),
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_trivia();
        self.pos == self.text.len()
    }
}

/// Parses the query syntax above into a [`Cxrpq`], interning edge-label
/// symbols into `alphabet`.
pub fn parse_query(text: &str, alphabet: &mut Alphabet) -> Result<Cxrpq, QueryTextError> {
    let mut sc = Scanner::new(text);
    let mut declared: Vec<String> = Vec::new();
    loop {
        sc.skip_trivia();
        if sc.rest().starts_with("strvars") {
            sc.pos += "strvars".len();
            // Names to end of line.
            let eol = sc.rest().find('\n').map_or(sc.text.len() - sc.pos, |i| i);
            let names = &sc.rest()[..eol];
            for name in names.split('#').next().unwrap_or("").split_whitespace() {
                declared.push(name.to_string());
            }
            sc.pos += eol;
        } else {
            break;
        }
    }
    sc.expect("ans")?;
    sc.expect("(")?;
    let mut output: Vec<String> = Vec::new();
    if !sc.eat(")") {
        loop {
            output.push(sc.ident()?.to_string());
            if sc.eat(")") {
                break;
            }
            sc.expect(",")?;
        }
    }
    sc.expect("<-")?;
    let mut atoms: Vec<(String, String, String)> = Vec::new();
    loop {
        sc.expect("(")?;
        let src = sc.ident()?.to_string();
        sc.expect(")")?;
        sc.expect("-[")?;
        let label = sc.until("]->")?.trim().to_string();
        if label.is_empty() {
            return Err(sc.error("empty edge label"));
        }
        sc.expect("(")?;
        let dst = sc.ident()?.to_string();
        sc.expect(")")?;
        atoms.push((src, label, dst));
        if !sc.eat(",") {
            break;
        }
    }
    if !sc.at_end() {
        return Err(sc.error("trailing input after query"));
    }
    if atoms.is_empty() {
        return Err(sc.error("a query needs at least one atom"));
    }
    let mut builder = CxrpqBuilder::new(alphabet);
    let declared_refs: Vec<&str> = declared.iter().map(String::as_str).collect();
    builder = builder.declare_vars(&declared_refs);
    for (src, label, dst) in &atoms {
        builder = builder.edge(src, label, dst);
    }
    let outs: Vec<&str> = output.iter().map(String::as_str).collect();
    builder = builder.output(&outs);
    builder.build().map_err(QueryTextError::Build)
}

/// Renders a query back into the concrete syntax ([`parse_query`]'s
/// inverse up to whitespace).
pub fn render_query(q: &Cxrpq, alphabet: &Alphabet) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    // Pure-equality variables (no definition anywhere) need declarations.
    let undefined = q.conjunctive().undefined_vars();
    if !undefined.is_empty() {
        let _ = write!(out, "strvars");
        for x in undefined {
            let _ = write!(out, " {}", q.conjunctive().vars().name(x));
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "ans(");
    for (i, v) in q.output().iter().enumerate() {
        if i > 0 {
            let _ = write!(out, ", ");
        }
        let _ = write!(out, "{}", q.pattern().node_name(*v));
    }
    let _ = writeln!(out, ") <-");
    let m = q.pattern().edge_count();
    for (i, (src, comp, dst)) in q.pattern().edges().iter().enumerate() {
        let label = q
            .conjunctive()
            .component(*comp)
            .render(alphabet, q.conjunctive().vars());
        let sep = if i + 1 < m { "," } else { "" };
        let _ = writeln!(
            out,
            "    ({}) -[ {} ]-> ({}){}",
            q.pattern().node_name(*src),
            label,
            q.pattern().node_name(*dst),
            sep
        );
    }
    out
}

/// Renders a query in *canonical* form: the normalization target behind
/// [`normalize_query`].
///
/// Differences from [`render_query`]: declared pure-equality variables are
/// sorted by name, and atom lines are sorted lexicographically — conjunction
/// is unordered, so two queries that differ only in atom order (or in
/// whitespace/comments, which the parser already discards) canonicalize to
/// the same text. Variables keep their user-chosen names: output tuples are
/// reported under those names, so α-renaming would change observable
/// behavior. The result re-parses to an equivalent query and is a fixpoint:
/// `canonical_query(parse(canonical_query(q)))` is byte-identical.
pub fn canonical_query(q: &Cxrpq, alphabet: &Alphabet) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let undefined = q.conjunctive().undefined_vars();
    if !undefined.is_empty() {
        let mut names: Vec<&str> = undefined
            .iter()
            .map(|x| q.conjunctive().vars().name(*x))
            .collect();
        names.sort_unstable();
        let _ = write!(out, "strvars");
        for name in names {
            let _ = write!(out, " {name}");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "ans(");
    for (i, v) in q.output().iter().enumerate() {
        if i > 0 {
            let _ = write!(out, ", ");
        }
        let _ = write!(out, "{}", q.pattern().node_name(*v));
    }
    let _ = writeln!(out, ") <-");
    let mut lines: Vec<String> = q
        .pattern()
        .edges()
        .iter()
        .map(|(src, comp, dst)| {
            let label = q
                .conjunctive()
                .component(*comp)
                .render(alphabet, q.conjunctive().vars());
            format!(
                "    ({}) -[ {} ]-> ({})",
                q.pattern().node_name(*src),
                label,
                q.pattern().node_name(*dst),
            )
        })
        .collect();
    lines.sort_unstable();
    let m = lines.len();
    for (i, line) in lines.into_iter().enumerate() {
        let sep = if i + 1 < m { "," } else { "" };
        let _ = writeln!(out, "{line}{sep}");
    }
    out
}

/// Parses `text` and returns its canonical rendering (see
/// [`canonical_query`]), so formatting variants of the same query — extra
/// whitespace, comments, reordered atoms, reordered `strvars` — map to one
/// cache key.
pub fn normalize_query(text: &str, alphabet: &mut Alphabet) -> Result<String, QueryTextError> {
    let q = parse_query(text, alphabet)?;
    Ok(canonical_query(&q, alphabet))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_xregex::Fragment;

    #[test]
    fn parses_figure_2_g3() {
        let mut alpha = Alphabet::from_chars("ab");
        let q = parse_query(
            "# covert channels\n\
             ans(v1, v2) <-\n\
                 (v1) -[ x{..+} ]-> (v2),\n\
                 (v2) -[ y{..+} ]-> (v1),\n\
                 (v1) -[ (x|y)+ ]-> (m),\n\
                 (v2) -[ (x|y)+ ]-> (m)\n",
            &mut alpha,
        )
        .unwrap();
        assert_eq!(q.pattern().edge_count(), 4);
        assert_eq!(q.output().len(), 2);
        assert_eq!(q.fragment(), Fragment::General);
    }

    #[test]
    fn boolean_query_and_strvars() {
        let mut alpha = Alphabet::from_chars("ab");
        let q = parse_query(
            "strvars w\n\
             ans() <- (x) -[ w ]-> (y), (u) -[ w ]-> (v)",
            &mut alpha,
        )
        .unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.conjunctive().var_count(), 1);
    }

    #[test]
    fn error_positions_are_useful() {
        let mut alpha = Alphabet::from_chars("ab");
        let e = parse_query("ans(x <- (x) -[ a ]-> (y)", &mut alpha).unwrap_err();
        match e {
            QueryTextError::Syntax { line, message, .. } => {
                assert_eq!(line, 1);
                assert!(message.contains("\",\""), "{message}");
            }
            other => panic!("unexpected {other}"),
        }
        let e2 = parse_query("ans() <- (x) -[ a (y)", &mut alpha).unwrap_err();
        assert!(e2.to_string().contains("unterminated"));
        let e3 = parse_query("ans() <- (x) -[ ]-> (y)", &mut alpha).unwrap_err();
        assert!(e3.to_string().contains("empty edge label"));
        let e4 = parse_query("ans() <- (x) -[ a ]-> (y) garbage", &mut alpha).unwrap_err();
        assert!(e4.to_string().contains("trailing"));
    }

    #[test]
    fn build_errors_surface() {
        let mut alpha = Alphabet::from_chars("ab");
        // x defined twice across components → conjunctive error.
        let e = parse_query(
            "ans() <- (u) -[ x{a} ]-> (v), (v) -[ x{b} ]-> (w)",
            &mut alpha,
        )
        .unwrap_err();
        assert!(matches!(e, QueryTextError::Build(_)));
        // Unknown output variable.
        let e2 = parse_query("ans(zz) <- (x) -[ a ]-> (y)", &mut alpha).unwrap_err();
        assert!(matches!(
            e2,
            QueryTextError::Build(CxrpqError::UnknownOutput(_))
        ));
    }

    #[test]
    fn render_parse_round_trip() {
        let mut alpha = Alphabet::from_chars("abc");
        let text = "strvars w\n\
                    ans(x, y) <- (x) -[ z{(a|b)+}cz ]-> (y), (y) -[ w ]-> (x), (q) -[ w ]-> (x)";
        let q = parse_query(text, &mut alpha).unwrap();
        let rendered = render_query(&q, &alpha);
        let mut alpha2 = Alphabet::from_chars("abc");
        let q2 = parse_query(&rendered, &mut alpha2).unwrap();
        assert_eq!(render_query(&q2, &alpha2), rendered);
        assert_eq!(q2.pattern().edge_count(), q.pattern().edge_count());
        assert_eq!(q2.output().len(), q.output().len());
    }

    #[test]
    fn normalization_collapses_formatting_variants() {
        let variants = [
            "ans(x, y) <- (x) -[ a+ ]-> (y), (y) -[ b ]-> (x)",
            "# same query, reordered + noisy\nans(x, y) <-\n\n  (y) -[ b ]-> (x) ,\n  (x) -[ a+ ]-> (y)  # trailing comment\n",
            "ans( x , y ) <- ( y ) -[ b ]-> ( x ), ( x ) -[ a+ ]-> ( y )",
        ];
        let mut alpha = Alphabet::from_chars("ab");
        let norms: Vec<String> = variants
            .iter()
            .map(|t| normalize_query(t, &mut alpha).unwrap())
            .collect();
        assert_eq!(norms[0], norms[1]);
        assert_eq!(norms[0], norms[2]);
        // Canonical text is a fixpoint of normalization.
        assert_eq!(normalize_query(&norms[0], &mut alpha).unwrap(), norms[0]);
    }

    #[test]
    fn normalization_sorts_strvar_declarations() {
        let mut alpha = Alphabet::from_chars("ab");
        let a = normalize_query(
            "strvars w z\nans() <- (x) -[ w ]-> (y), (u) -[ z ]-> (v), (p) -[ w ]-> (r)",
            &mut alpha,
        )
        .unwrap();
        let b = normalize_query(
            "strvars z\nstrvars w\nans() <- (u) -[ z ]-> (v), (p) -[ w ]-> (r), (x) -[ w ]-> (y)",
            &mut alpha,
        )
        .unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("strvars w z\n"), "{a}");
    }

    #[test]
    fn normalization_preserves_output_order_and_names() {
        let mut alpha = Alphabet::from_chars("ab");
        let xy = normalize_query("ans(x, y) <- (x) -[ a ]-> (y)", &mut alpha).unwrap();
        let yx = normalize_query("ans(y, x) <- (x) -[ a ]-> (y)", &mut alpha).unwrap();
        assert_ne!(xy, yx, "output order is observable — must not collapse");
        let renamed = normalize_query("ans(u, v) <- (u) -[ a ]-> (v)", &mut alpha).unwrap();
        assert_ne!(xy, renamed, "variable names are observable — no α-renaming");
    }

    #[test]
    fn normalized_query_still_evaluates_identically() {
        use crate::engine::AutoEvaluator;
        use std::sync::Arc;
        let mut alpha = Alphabet::from_chars("abc");
        let text = "ans(x, y) <- (y) -[ c ]-> (x), (x) -[ (a|b)+ ]-> (y)";
        let norm = normalize_query(text, &mut alpha).unwrap();
        let q1 = parse_query(text, &mut alpha).unwrap();
        let q2 = parse_query(&norm, &mut alpha).unwrap();
        let mut db = cxrpq_graph::GraphBuilder::new(Arc::new(alpha));
        let s = db.add_node();
        let t = db.add_node();
        let w = db.alphabet().parse_word("ab").unwrap();
        db.add_word_path(s, &w, t);
        let c = db.alphabet().parse_word("c").unwrap();
        db.add_word_path(t, &c, s);
        let db = db.freeze();
        assert_eq!(
            AutoEvaluator::new(&q1).answers(&db).value,
            AutoEvaluator::new(&q2).answers(&db).value
        );
    }

    #[test]
    fn parsed_query_evaluates() {
        use crate::engine::AutoEvaluator;
        use std::sync::Arc;
        let mut alpha = Alphabet::from_chars("abc");
        let q = parse_query("ans(x, y) <- (x) -[ z{(a|b)+}cz ]-> (y)", &mut alpha).unwrap();
        let mut db = cxrpq_graph::GraphBuilder::new(Arc::new(alpha));
        let s = db.add_node();
        let t = db.add_node();
        let w = db.alphabet().parse_word("abcab").unwrap();
        db.add_word_path(s, &w, t);
        let db = db.freeze();
        let r = AutoEvaluator::new(&q).answers(&db);
        assert!(r.value.contains(&vec![s, t]));
    }
}
