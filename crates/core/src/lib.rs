//! CXRPQ query classes and evaluation engines — the primary contribution of
//! Schmid, "Conjunctive Regular Path Queries with String Variables"
//! (PODS 2020).
//!
//! Query classes (§2.3, §4, §1.3):
//! - [`Crpq`]: conjunctive regular path queries (the baseline, Lemma 1);
//! - [`Cxrpq`]: conjunctive *xregex* path queries (Definition 5) with the
//!   fragments of §5–§6 (classified by `cxrpq-xregex`);
//! - [`Ecrpq`]: extended CRPQs with regular relations (Barceló et al. \[8\]),
//!   including the equality-relation fragment `ECRPQ^er`.
//!
//! Evaluation engines:
//! - [`CrpqEvaluator`]: per-edge product reachability + conjunctive join;
//! - [`SimpleEvaluator`]: Lemma 3 — simple CXRPQs via synchronized
//!   variable-group product search;
//! - [`VsfEvaluator`]: Lemma 7 — `CXRPQ^{vsf}` via derandomized branch
//!   choices, Step 2/3 normalization and the simple engine;
//! - [`BoundedEvaluator`]: Theorem 6 — `CXRPQ^{≤k}` via topological
//!   enumeration of variable mappings, Lemma 10/11 specialization to CRPQs;
//! - [`LogEvaluator`]: Corollary 1 — `CXRPQ^{log}` (k = ⌈log₂|D|⌉);
//! - [`GenericEvaluator`]: unrestricted CXRPQs by iterative image-bound
//!   deepening (the paper leaves the upper bound open; see DESIGN.md);
//! - [`EcrpqEvaluator`]: the on-the-fly synchronized product for ECRPQ.
//!
//! Translations (§7): [`translate::ecrpq_er_to_cxrpq`] (Lemma 12),
//! [`translate::cxrpq_vsf_to_union_ecrpq_er`] (Lemma 13),
//! [`translate::cxrpq_bounded_to_union_crpq`] (Lemma 14).

pub mod analyze;
pub mod bounded;
pub mod cache;
pub mod crpq;
pub mod cxrpq;
pub mod diagnostics;
pub mod domains;
pub mod ecrpq;
pub mod engine;
pub mod frontier;
pub mod generic;
pub mod governor;
pub mod log_eval;
pub mod path_semantics;
pub mod pattern;
pub mod plan;
pub mod pool;
pub mod query_text;
pub mod reach;
pub mod relation;
pub mod simple_eval;
pub mod solve;
pub mod sync;
pub mod translate;
pub mod union_query;
pub mod vsf_eval;
pub mod witness;

pub use analyze::{AnalysisReport, AnalysisStats};
pub use bounded::{BoundedEvaluator, BoundedStats};
pub use cache::{
    CacheConfig, CacheError, CacheOutcome, CacheStats, Footprint, QueryCache, ServedAnswers,
};
pub use crpq::{Crpq, CrpqEvaluator};
pub use cxrpq::{Cxrpq, CxrpqBuilder, CxrpqError};
pub use diagnostics::{AtomRef, Diagnostic, Diagnostics, Lint, Severity};
pub use domains::Domains;
pub use ecrpq::{Ecrpq, EcrpqEvaluator};
pub use engine::{AutoEvaluator, EngineKind, EvalOptions, Evaluated};
pub use frontier::FrontierConfig;
pub use generic::{GenericEvaluator, GenericOutcome};
pub use governor::{AbortReason, Governor, Outcome, Verdict};
pub use log_eval::LogEvaluator;
pub use path_semantics::{rpq_holds, rpq_pairs, rpq_witness, PathSemantics};
pub use pattern::{GraphPattern, NodeVar};
pub use plan::SolvePlan;
pub use pool::WorkerPool;
pub use query_text::{canonical_query, normalize_query, parse_query, render_query, QueryTextError};
pub use relation::{RegularRelation, RelLabel, TupComp};
pub use simple_eval::SimpleEvaluator;
pub use solve::{PipelineStats, SolveOptions, Strategy};
pub use union_query::{UnionCrpq, UnionEcrpq};
pub use vsf_eval::VsfEvaluator;
pub use witness::{edge_path, QueryWitness};
