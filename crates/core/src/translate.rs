//! The expressiveness translations of §7 (Figure 5's inclusion arrows).
//!
//! - Lemma 12: `⟦ECRPQ^er⟧ ⊆ ⟦CXRPQ^{vsf,fl}⟧` — every equality class gets
//!   one string variable: the designated edge defines `z_j{β_j}` with
//!   `β_j ≡ ⋂ᵢ L(αᵢ)`, every other edge becomes a bare reference.
//! - Lemma 13: `⟦CXRPQ^{vsf}⟧ ⊆ ⟦∪-ECRPQ^er⟧` — per simple branch choice,
//!   subdivide components into factor edges and put each variable group
//!   under an equality relation.
//! - Lemma 14: `⟦CXRPQ^{≤k}⟧ ⊆ ⟦∪-CRPQ⟧` — one specialized CRPQ per
//!   candidate variable mapping (the exponential conciseness gap measured
//!   in experiment E11).

use crate::bounded::BoundedEvaluator;
use crate::crpq::Crpq;
use crate::cxrpq::Cxrpq;
use crate::ecrpq::{Ecrpq, EcrpqError};
use crate::pattern::GraphPattern;
use crate::relation::RegularRelation;
use crate::simple_eval::{deref_basic_chains, factorize, Factor};
use cxrpq_automata::{nfa_to_regex, Nfa, Regex};
use cxrpq_graph::Symbol;
use cxrpq_xregex::normal_form::{simple_choices, NormalFormError};
use cxrpq_xregex::specialize::{specialize, VarMapping};
use cxrpq_xregex::{ConjunctiveXregex, VarTable, Xregex};
use std::fmt;

/// The ECRPQ is not in the equality-relation fragment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NotEr;

impl fmt::Display for NotEr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lemma 12 applies to ECRPQ^er (equality relations only)")
    }
}

impl std::error::Error for NotEr {}

/// Lemma 12: translates an `ECRPQ^er` into an equivalent `CXRPQ^{vsf,fl}`.
pub fn ecrpq_er_to_cxrpq(q: &Ecrpq) -> Result<Cxrpq, NotEr> {
    if !q.is_er() {
        return Err(NotEr);
    }
    let m = q.pattern().edge_count();
    let mut comps: Vec<Option<Xregex>> = q
        .pattern()
        .edges()
        .iter()
        .map(|(_, re, _)| Some(Xregex::from_regex(re)))
        .collect();
    let mut vars = VarTable::new();
    for (j, (_, edges)) in q.relations().iter().enumerate() {
        let z = vars.fresh(&format!("z{}", j + 1));
        // β = regex for ⋂ L(α_i) over the class.
        let nfas: Vec<Nfa> = edges
            .iter()
            .map(|&e| Nfa::from_regex(&q.pattern().edges()[e].1))
            .collect();
        let beta = nfa_to_regex(&Nfa::intersect_all(&nfas));
        for (slot, &e) in edges.iter().enumerate() {
            comps[e] = Some(if slot == 0 {
                Xregex::VarDef(z, Box::new(Xregex::from_regex(&beta)))
            } else {
                Xregex::VarRef(z)
            });
        }
    }
    let comps: Vec<Xregex> = comps.into_iter().map(Option::unwrap).collect();
    debug_assert_eq!(comps.len(), m);
    let cxre =
        ConjunctiveXregex::new(comps, vars).expect("translation yields a valid conjunctive xregex");
    let pattern = q.pattern().map_labels(|i, _| i);
    Ok(Cxrpq::from_parts(pattern, cxre, q.output().to_vec()))
}

/// Lemma 13: translates a `CXRPQ^{vsf}` into an equivalent union of
/// `ECRPQ^er` (one per simple branch choice; exponentially many in general).
pub fn cxrpq_vsf_to_union_ecrpq_er(q: &Cxrpq) -> Result<Vec<Ecrpq>, NormalFormError> {
    let mut union = Vec::new();
    for choice in simple_choices(q.conjunctive())? {
        let mut comps: Vec<Xregex> = choice.components().to_vec();
        deref_basic_chains(&mut comps);
        let mut pattern: GraphPattern<Regex> = GraphPattern::new();
        // Re-intern original node variables by name, preserving indices.
        for v in q.pattern().node_vars() {
            pattern.node(q.pattern().node_name(v));
        }
        let mut var_members: std::collections::BTreeMap<cxrpq_xregex::Var, Vec<(usize, bool)>> =
            std::collections::BTreeMap::new();
        let mut fresh = 0usize;
        for (edge_idx, (src, _, dst)) in q.pattern().edges().iter().enumerate() {
            let factors = factorize(&comps[edge_idx]);
            if factors.is_empty() {
                pattern.add_edge(*src, Regex::Epsilon, *dst);
                continue;
            }
            let t = factors.len();
            let mut prev = *src;
            for (j, f) in factors.into_iter().enumerate() {
                let next = if j + 1 == t {
                    *dst
                } else {
                    fresh += 1;
                    pattern.node(&format!("·{edge_idx}_{fresh}"))
                };
                match f {
                    Factor::Classical(re) => {
                        pattern.add_edge(prev, re, next);
                    }
                    Factor::Ref(x) => {
                        let e = pattern.add_edge(prev, Regex::sigma_star(), next);
                        var_members.entry(x).or_default().push((e, false));
                    }
                    Factor::Def(x, re) => {
                        let e = pattern.add_edge(prev, re, next);
                        var_members.entry(x).or_default().push((e, true));
                    }
                }
                prev = next;
            }
        }
        let mut relations = Vec::new();
        for (_, mut mem) in var_members {
            if mem.len() >= 2 {
                mem.sort_by_key(|(_, is_def)| !*is_def);
                let edges: Vec<usize> = mem.iter().map(|(e, _)| *e).collect();
                relations.push((RegularRelation::equality(edges.len()), edges));
            }
        }
        let ecrpq = Ecrpq::new(pattern, relations, q.output().to_vec())
            .expect("translation yields a valid ECRPQ");
        debug_assert!(ecrpq.is_er());
        union.push(ecrpq);
    }
    Ok(union)
}

/// Lemma 14: translates a `CXRPQ^{≤k}` into an equivalent union of CRPQs —
/// one per (pruned) candidate mapping with non-empty specialization.
pub fn cxrpq_bounded_to_union_crpq(q: &Cxrpq, k: usize, sigma: usize) -> Vec<Crpq> {
    let mut out = Vec::new();
    for_each_pruned_mapping(q, k, sigma, &mut |psi| {
        if let Some(regexes) = specialize(q.conjunctive(), psi) {
            out.push(q.to_crpq(&regexes));
        }
    });
    out
}

/// Enumerates the pruned candidate mappings of [`BoundedEvaluator`] (shared
/// with Lemma 14).
fn for_each_pruned_mapping(q: &Cxrpq, k: usize, sigma: usize, f: &mut dyn FnMut(&VarMapping)) {
    // Reuse the evaluator's enumeration via its public fixed-mapping probe:
    // re-derive candidates exactly as BoundedEvaluator does.
    let _ = BoundedEvaluator::new(q, k); // sanity: constructible
    use cxrpq_xregex::specialize::substituted_body;
    let order = q.conjunctive().topological_vars();
    fn all_words(k: usize, sigma: usize) -> Vec<Vec<Symbol>> {
        let mut out: Vec<Vec<Symbol>> = vec![Vec::new()];
        let mut frontier: Vec<Vec<Symbol>> = vec![Vec::new()];
        for _ in 0..k {
            let mut next = Vec::new();
            for w in &frontier {
                for s in 0..sigma as u32 {
                    let mut v = w.clone();
                    v.push(Symbol(s));
                    next.push(v);
                }
            }
            out.extend(next.iter().cloned());
            frontier = next;
        }
        out
    }
    fn rec(
        q: &Cxrpq,
        order: &[cxrpq_xregex::Var],
        idx: usize,
        k: usize,
        sigma: usize,
        psi: &mut VarMapping,
        f: &mut dyn FnMut(&VarMapping),
    ) {
        if idx == order.len() {
            f(psi);
            return;
        }
        let x = order[idx];
        let mut bodies = Vec::new();
        for c in q.conjunctive().components() {
            c.walk(&mut |n| {
                if let Xregex::VarDef(y, body) = n {
                    if *y == x {
                        bodies.push((**body).clone());
                    }
                }
            });
        }
        let candidates: Vec<Vec<Symbol>> = if bodies.is_empty() {
            all_words(k, sigma)
        } else {
            let mut set: std::collections::BTreeSet<Vec<Symbol>> =
                std::collections::BTreeSet::new();
            set.insert(Vec::new());
            for body in &bodies {
                let re = substituted_body(body, psi);
                for w in Nfa::from_regex(&re).enumerate_upto(k, sigma) {
                    set.insert(w);
                }
            }
            set.into_iter().collect()
        };
        for c in candidates {
            psi.insert(x, c);
            rec(q, order, idx + 1, k, sigma, psi, f);
            psi.remove(&x);
        }
    }
    let mut psi = VarMapping::new();
    rec(q, &order, 0, k, sigma, &mut psi, f);
}

/// Lemma 13 packaged as a first-class `∪-ECRPQ^er` value.
pub fn cxrpq_vsf_to_union(q: &Cxrpq) -> Result<crate::union_query::UnionEcrpq, NormalFormError> {
    Ok(crate::union_query::UnionEcrpq::new(
        cxrpq_vsf_to_union_ecrpq_er(q)?,
    ))
}

/// Lemma 14 packaged as a first-class `∪-CRPQ` value.
pub fn cxrpq_bounded_to_union(q: &Cxrpq, k: usize, sigma: usize) -> crate::union_query::UnionCrpq {
    crate::union_query::UnionCrpq::new(cxrpq_bounded_to_union_crpq(q, k, sigma))
}

/// Evaluates a union of CRPQs (Boolean).
pub fn union_crpq_boolean(union: &[Crpq], db: &cxrpq_graph::GraphDb) -> bool {
    union
        .iter()
        .any(|q| crate::crpq::CrpqEvaluator::new(q).boolean(db))
}

/// Evaluates a union of ECRPQs (Boolean).
pub fn union_ecrpq_boolean(union: &[Ecrpq], db: &cxrpq_graph::GraphDb) -> bool {
    union
        .iter()
        .any(|q| crate::ecrpq::EcrpqEvaluator::new(q).boolean(db))
}

/// Re-export for callers building unions of answers.
pub use crate::ecrpq::EcrpqEvaluator as UnionMemberEvaluator;

#[allow(unused)]
fn _doc_anchor(_: EcrpqError) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cxrpq::CxrpqBuilder;
    use crate::ecrpq::EcrpqEvaluator;
    use crate::vsf_eval::VsfEvaluator;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb, NodeId};
    use std::sync::Arc;

    fn db_words(words: &[&str]) -> (GraphDb, Vec<(NodeId, NodeId)>) {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let mut ends = Vec::new();
        for w in words {
            let s = db.add_node();
            let t = db.add_node();
            let word = db.alphabet().parse_word(w).unwrap();
            db.add_word_path(s, &word, t);
            ends.push((s, t));
        }
        (db.freeze(), ends)
    }

    fn er_query(alpha: &mut Alphabet, re1: &str, re2: &str) -> Ecrpq {
        let mut pattern = GraphPattern::new();
        let x = pattern.node("x");
        let y = pattern.node("y");
        let u = pattern.node("u");
        let v = pattern.node("v");
        let r1 = parse_regex(re1, alpha).unwrap();
        let r2 = parse_regex(re2, alpha).unwrap();
        pattern.add_edge(x, r1, y);
        pattern.add_edge(u, r2, v);
        Ecrpq::new(
            pattern,
            vec![(RegularRelation::equality(2), vec![0, 1])],
            vec![x, y, u, v],
        )
        .unwrap()
    }

    #[test]
    fn lemma12_preserves_answers() {
        let (db, _) = db_words(&["aab", "aab", "abb", "ab"]);
        let mut alpha = db.alphabet().clone();
        let q = er_query(&mut alpha, "a*b", "a+b*");
        let translated = ecrpq_er_to_cxrpq(&q).unwrap();
        // The translation is vstar-free with flat variables.
        use cxrpq_xregex::{classification, Fragment};
        let c = classification(translated.conjunctive());
        assert!(c.vstar_free && c.all_flat);
        assert_ne!(c.fragment(), Fragment::General);
        let lhs = EcrpqEvaluator::new(&q).answers(&db);
        let rhs = VsfEvaluator::new(&translated).unwrap().answers(&db);
        assert_eq!(lhs, rhs);
        assert!(!lhs.is_empty());
    }

    #[test]
    fn lemma13_preserves_boolean() {
        let (db, _) = db_words(&["abab", "ab", "ba", "aabb", "bb"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{ab|ba}z", "y")
            .edge("u", "z|ab", "v")
            .build()
            .unwrap();
        let union = cxrpq_vsf_to_union_ecrpq_er(&q).unwrap();
        assert!(union.iter().all(Ecrpq::is_er));
        let direct = VsfEvaluator::new(&q).unwrap().boolean(&db);
        assert_eq!(direct, union_ecrpq_boolean(&union, &db));
        assert!(direct);
        // A database without any matching word pair.
        let (db2, _) = db_words(&["aa", "bb"]);
        assert_eq!(
            VsfEvaluator::new(&q).unwrap().boolean(&db2),
            union_ecrpq_boolean(&union, &db2)
        );
    }

    #[test]
    fn lemma13_answers_match() {
        let (db, ends) = db_words(&["abab", "aabb"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{ab}z", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let union = cxrpq_vsf_to_union_ecrpq_er(&q).unwrap();
        let direct = VsfEvaluator::new(&q).unwrap().answers(&db);
        let mut from_union = std::collections::BTreeSet::new();
        for e in &union {
            from_union.extend(EcrpqEvaluator::new(e).answers(&db));
        }
        assert_eq!(direct, from_union);
        assert!(direct.contains(&vec![ends[0].0, ends[0].1]));
    }

    #[test]
    fn lemma14_union_equivalence() {
        let (db, _) = db_words(&["abcab".replace('c', "a").as_str(), "aa", "bb"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{(a|b)+}az", "y")
            .build()
            .unwrap();
        for k in 0..=2usize {
            let union = cxrpq_bounded_to_union_crpq(&q, k, db.alphabet().len());
            let direct = BoundedEvaluator::new(&q, k).boolean(&db);
            assert_eq!(
                direct,
                union_crpq_boolean(&union, &db),
                "mismatch at k={k} (union size {})",
                union.len()
            );
        }
    }

    #[test]
    fn lemma14_union_grows_with_k() {
        let mut alpha = Alphabet::from_chars("ab");
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{(a|b)*}z", "y")
            .build()
            .unwrap();
        let sizes: Vec<usize> = (0..=3)
            .map(|k| cxrpq_bounded_to_union_crpq(&q, k, 2).len())
            .collect();
        // 1, 3, 7, 15: all words up to length k plus ε-only mapping.
        assert!(sizes.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(sizes[0], 1);
        assert_eq!(sizes[1], 3);
    }
}
