//! The resource governor: deadlines, fuel, memory ceilings and cooperative
//! cancellation for every search loop in the evaluation stack.
//!
//! CXRPQ evaluation is PSPACE-hard in general (Theorem 1), so a single
//! adversarial — or merely unlucky — query can otherwise pin a core
//! indefinitely. A [`Governor`] is a cheap shared handle (an
//! `Arc<Governor>` rides inside [`SolveOptions`](crate::solve::SolveOptions)
//! and [`EvalOptions`](crate::engine::EvalOptions)) that every hot loop
//! consults at its checkpoints:
//!
//! - the BFS and wavefront loops of [`crate::reach`],
//! - the synchronized product levels of [`crate::sync`],
//! - the sharded level barriers of [`crate::frontier`] (workers observe the
//!   flag and drain),
//! - the backtracking enumeration of [`crate::solve`],
//! - the semi-join fixpoint of [`crate::domains`],
//! - the witness searches of [`crate::witness`], the bounded mapping
//!   enumeration of [`crate::bounded`], and the restricted walks of
//!   [`crate::path_semantics`].
//!
//! A checkpoint ([`Governor::checkpoint`]) charges fuel, then tests — in
//! order — fault injection, the step budget, the cooperative cancel flags,
//! the memory ceiling, and (every few checkpoints, to amortize the clock
//! read) the deadline. The first failing test *trips* the governor with an
//! [`AbortReason`]; the trip is **sticky**: every later checkpoint fails
//! immediately, so deep loops bail out cooperatively and the whole stack
//! drains in bounded time without unwinding.
//!
//! **Abort discipline.** A tripped governor makes every search
//! *under-approximate*: partial BFS reach sets are sound subsets, an
//! aborted group check reports "no", an aborted prune only ever shrinks
//! domains, and an aborted existential witness skips its tuple. Partial
//! answers are therefore always a subset of the complete answer set — the
//! property `tests/prop_abort_safety.rs` drives at every checkpoint index.
//! Caches must never retain partially-filled entries:
//! [`ReachCache`](crate::reach::ReachCache) skips memoization whenever its
//! governor tripped mid-fill, so a repeat solve after an abort equals a
//! fresh solve.
//!
//! **Memory accounting** ([`Governor::charge_mem`]) is *approximate and
//! cumulative*: the big allocation sites (dense bitsets, wavefront
//! membership arrays, memoized reach sets, projection dedup tables) charge
//! their footprint when they allocate; nothing is refunded on free. The
//! ceiling therefore bounds the total allocation traffic of one evaluation,
//! which is the quantity that matters for an adversarial query.
//!
//! **Fault injection** ([`Governor::with_injection`]) deterministically
//! trips the governor at the k-th checkpoint with
//! [`AbortReason::Injected`] — the hook the abort-safety property suite
//! uses to prove that *every* checkpoint is a safe abort point. A counting
//! dry run ([`Governor::checkpoints_seen`]) learns how many checkpoints an
//! evaluation passes; the suite then replays with `inject_at` sampled from
//! that range.
//!
//! Governors are **single-use**: one evaluation, one governor. A tripped
//! governor never untripss; repeat solves take a fresh handle.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an evaluation was aborted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step (fuel) budget ran out.
    Fuel,
    /// The approximate memory ceiling was exceeded.
    Memory,
    /// The cooperative cancel flag was raised.
    Cancelled,
    /// A fault-injection trip (testing only; see
    /// [`Governor::with_injection`]).
    Injected,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Deadline => write!(f, "deadline"),
            AbortReason::Fuel => write!(f, "fuel"),
            AbortReason::Memory => write!(f, "memory"),
            AbortReason::Cancelled => write!(f, "cancelled"),
            AbortReason::Injected => write!(f, "injected"),
        }
    }
}

/// Whether an evaluation ran to completion or was aborted (and why).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The evaluation explored everything it was asked to: the result is
    /// whatever the engine's semantics promise (exact, or `⊨_{≤k}`).
    Complete,
    /// The governor tripped mid-flight: the result is a sound *partial*
    /// under-approximation (partial answers ⊆ complete answers).
    Aborted(AbortReason),
}

impl Verdict {
    /// Whether the evaluation ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, Verdict::Complete)
    }

    /// The abort reason, if any.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            Verdict::Complete => None,
            Verdict::Aborted(r) => Some(*r),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Complete => write!(f, "complete"),
            Verdict::Aborted(r) => write!(f, "aborted ({r})"),
        }
    }
}

/// A value together with the verdict of the evaluation that produced it.
///
/// When `verdict` is [`Verdict::Aborted`], `value` holds the *partial*
/// result accumulated before the trip — always a sound under-approximation
/// of the complete result (graceful degradation, never a hang).
#[derive(Clone, Debug)]
pub struct Outcome<T> {
    /// The (possibly partial) result.
    pub value: T,
    /// Whether the evaluation completed or was aborted.
    pub verdict: Verdict,
}

impl<T> Outcome<T> {
    /// Wraps `value` with the verdict currently recorded on `gov`
    /// (`None` / a disabled governor yield [`Verdict::Complete`]).
    pub fn from_governor(value: T, gov: Option<&Governor>) -> Self {
        Self {
            value,
            verdict: gov.map_or(Verdict::Complete, Governor::verdict),
        }
    }

    /// Whether the value is a truncated (partial) result.
    pub fn truncated(&self) -> bool {
        !self.verdict.is_complete()
    }
}

/// Encoding of the sticky trip state: 0 = running, otherwise
/// `AbortReason as u8 + 1`.
const NOT_TRIPPED: u8 = 0;

fn encode(reason: AbortReason) -> u8 {
    reason as u8 + 1
}

fn decode(raw: u8) -> Option<AbortReason> {
    match raw {
        0 => None,
        1 => Some(AbortReason::Deadline),
        2 => Some(AbortReason::Fuel),
        3 => Some(AbortReason::Memory),
        4 => Some(AbortReason::Cancelled),
        _ => Some(AbortReason::Injected),
    }
}

/// How often (in checkpoints) the deadline clock is actually read;
/// everything else is a relaxed atomic op per checkpoint.
const DEADLINE_STRIDE: u64 = 32;

/// The shared resource-governor handle (see the module docs).
///
/// All state is atomic: sharded frontier workers consult the same governor
/// through a shared reference, and an external thread cancels through the
/// same `Arc<Governor>` (or a detached [`Governor::cancel_flag`]).
pub struct Governor {
    /// Wall-clock deadline (`None` = unlimited).
    deadline: Option<Instant>,
    /// Step budget (`u64::MAX` = unlimited).
    max_steps: u64,
    /// Approximate memory ceiling in bytes (`usize::MAX` = unlimited).
    mem_limit: usize,
    /// Fault injection: trip at this checkpoint ordinal (`u64::MAX` = off).
    inject_at: u64,
    /// External cancel flag shared beyond this governor's `Arc`.
    external_cancel: Option<Arc<AtomicBool>>,
    steps: AtomicU64,
    checkpoints: AtomicU64,
    mem_used: AtomicUsize,
    cancel: AtomicBool,
    tripped: AtomicU8,
}

/// The process-wide disabled governor: every checkpoint passes, nothing is
/// ever recorded. Hot loops that run ungoverned borrow this instead of
/// branching on an `Option`.
static DISABLED: Governor = Governor {
    deadline: None,
    max_steps: u64::MAX,
    mem_limit: usize::MAX,
    inject_at: u64::MAX,
    external_cancel: None,
    steps: AtomicU64::new(0),
    checkpoints: AtomicU64::new(0),
    mem_used: AtomicUsize::new(0),
    cancel: AtomicBool::new(false),
    tripped: AtomicU8::new(NOT_TRIPPED),
};

impl fmt::Debug for Governor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Governor")
            .field("deadline", &self.deadline)
            .field("max_steps", &self.max_steps)
            .field("mem_limit", &self.mem_limit)
            .field("inject_at", &self.inject_at)
            .field("steps", &self.steps_taken())
            .field("checkpoints", &self.checkpoints_seen())
            .field("verdict", &self.verdict())
            .finish()
    }
}

impl Default for Governor {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Governor {
    /// A governor with no limits: checkpoints always pass (until
    /// [`Governor::cancel`] is called), but steps, checkpoints and memory
    /// are still counted — the counting dry run of the fault-injection
    /// harness uses exactly this.
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            max_steps: u64::MAX,
            mem_limit: usize::MAX,
            inject_at: u64::MAX,
            external_cancel: None,
            steps: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            mem_used: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            tripped: AtomicU8::new(NOT_TRIPPED),
        }
    }

    /// The shared always-passing governor for ungoverned call paths.
    pub fn disabled() -> &'static Governor {
        &DISABLED
    }

    /// Sets a wall-clock deadline `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Sets the step (fuel) budget.
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Sets the approximate memory ceiling, in bytes.
    pub fn with_mem_limit(mut self, bytes: usize) -> Self {
        self.mem_limit = bytes;
        self
    }

    /// Fault injection (testing): trip with [`AbortReason::Injected`] at
    /// the `k`-th checkpoint (1-based).
    pub fn with_injection(mut self, k: u64) -> Self {
        self.inject_at = k;
        self
    }

    /// Observes an externally shared cancel flag in addition to this
    /// governor's own: raising either flag cancels the evaluation at the
    /// next checkpoint.
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.external_cancel = Some(flag);
        self
    }

    /// Raises the cooperative cancel flag; the evaluation aborts with
    /// [`AbortReason::Cancelled`] at its next checkpoint.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// A detached handle to this governor's cancel flag (the external one
    /// when configured, a fresh view of the internal state otherwise is not
    /// possible — so this returns the external flag if present).
    pub fn cancel_flag(&self) -> Option<Arc<AtomicBool>> {
        self.external_cancel.clone()
    }

    /// Trips the governor with `reason` (first trip wins; later trips are
    /// ignored so the original cause is reported).
    fn trip(&self, reason: AbortReason) {
        let _ = self.tripped.compare_exchange(
            NOT_TRIPPED,
            encode(reason),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Whether the governor has tripped.
    #[inline]
    pub fn is_aborted(&self) -> bool {
        self.tripped.load(Ordering::Relaxed) != NOT_TRIPPED
    }

    /// The abort reason, if tripped.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        decode(self.tripped.load(Ordering::Relaxed))
    }

    /// The verdict so far: [`Verdict::Complete`] while untripped.
    pub fn verdict(&self) -> Verdict {
        match self.abort_reason() {
            None => Verdict::Complete,
            Some(r) => Verdict::Aborted(r),
        }
    }

    /// Fuel consumed so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Checkpoints passed through so far (the fault-injection dry run reads
    /// this to learn the injection range).
    pub fn checkpoints_seen(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Approximate bytes charged so far.
    pub fn mem_charged(&self) -> usize {
        self.mem_used.load(Ordering::Relaxed)
    }

    /// Charges `bytes` against the memory ceiling (approximate, cumulative;
    /// see the module docs). Exceeding the ceiling trips the governor; the
    /// allocation itself still proceeds — the *next* checkpoint aborts.
    pub fn charge_mem(&self, bytes: usize) {
        if self.mem_limit == usize::MAX {
            return;
        }
        let total = self.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if total > self.mem_limit {
            self.trip(AbortReason::Memory);
        }
    }

    /// One checkpoint charging a single step. Returns `true` to keep going,
    /// `false` when the evaluation must drain and abort.
    #[inline]
    pub fn checkpoint(&self) -> bool {
        self.checkpoint_n(1)
    }

    /// One checkpoint charging `steps` units of fuel (batch form for
    /// level-synchronous loops: one checkpoint per level, fuel proportional
    /// to the level's size).
    pub fn checkpoint_n(&self, steps: u64) -> bool {
        if self.is_aborted() {
            return false; // sticky
        }
        let k = self.checkpoints.fetch_add(1, Ordering::Relaxed) + 1;
        if k >= self.inject_at {
            self.trip(AbortReason::Injected);
            return false;
        }
        let used = self.steps.fetch_add(steps, Ordering::Relaxed) + steps;
        if used > self.max_steps {
            self.trip(AbortReason::Fuel);
            return false;
        }
        if self.cancel.load(Ordering::Relaxed)
            || self
                .external_cancel
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
        {
            self.trip(AbortReason::Cancelled);
            return false;
        }
        if self.is_aborted() {
            // A concurrent worker (or a `charge_mem`) tripped between the
            // entry check and here.
            return false;
        }
        if let Some(dl) = self.deadline {
            // Reading the clock is the expensive part of a checkpoint;
            // amortize it over a stride (the first checkpoint always
            // checks, so a deadline already in the past trips immediately).
            if (k % DEADLINE_STRIDE == 1 || DEADLINE_STRIDE == 1) && Instant::now() >= dl {
                self.trip(AbortReason::Deadline);
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_always_passes_and_records_nothing_visible() {
        let g = Governor::disabled();
        for _ in 0..100 {
            assert!(g.checkpoint());
        }
        assert!(!g.is_aborted());
        assert!(g.verdict().is_complete());
    }

    #[test]
    fn fuel_trips_and_stays_tripped() {
        let g = Governor::unlimited().with_max_steps(10);
        let mut passed = 0;
        for _ in 0..100 {
            if g.checkpoint() {
                passed += 1;
            }
        }
        assert_eq!(passed, 10);
        assert_eq!(g.abort_reason(), Some(AbortReason::Fuel));
        assert!(!g.checkpoint(), "trip is sticky");
        assert_eq!(g.verdict(), Verdict::Aborted(AbortReason::Fuel));
    }

    #[test]
    fn past_deadline_trips_on_first_checkpoint() {
        let g = Governor::unlimited().with_deadline(Duration::from_secs(0));
        assert!(!g.checkpoint());
        assert_eq!(g.abort_reason(), Some(AbortReason::Deadline));
    }

    #[test]
    fn cancel_trips_cooperatively() {
        let g = Governor::unlimited();
        assert!(g.checkpoint());
        g.cancel();
        assert!(!g.checkpoint());
        assert_eq!(g.abort_reason(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn external_cancel_flag_observed() {
        let flag = Arc::new(AtomicBool::new(false));
        let g = Governor::unlimited().with_cancel_flag(flag.clone());
        assert!(g.checkpoint());
        flag.store(true, Ordering::Relaxed);
        assert!(!g.checkpoint());
        assert_eq!(g.abort_reason(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn memory_ceiling_trips_next_checkpoint() {
        let g = Governor::unlimited().with_mem_limit(1000);
        g.charge_mem(600);
        assert!(g.checkpoint());
        g.charge_mem(600);
        assert!(g.is_aborted());
        assert!(!g.checkpoint());
        assert_eq!(g.abort_reason(), Some(AbortReason::Memory));
        assert!(g.mem_charged() >= 1200);
    }

    #[test]
    fn injection_trips_at_exact_checkpoint() {
        for k in 1..=5u64 {
            let g = Governor::unlimited().with_injection(k);
            let mut passed = 0u64;
            while g.checkpoint() {
                passed += 1;
            }
            assert_eq!(passed, k - 1, "inject_at = {k}");
            assert_eq!(g.abort_reason(), Some(AbortReason::Injected));
        }
    }

    #[test]
    fn counting_dry_run_reports_checkpoints() {
        let g = Governor::unlimited();
        for _ in 0..17 {
            assert!(g.checkpoint_n(3));
        }
        assert_eq!(g.checkpoints_seen(), 17);
        assert_eq!(g.steps_taken(), 51);
    }

    #[test]
    fn outcome_wraps_verdicts() {
        let ok = Outcome::from_governor(42, None);
        assert!(!ok.truncated());
        let g = Governor::unlimited().with_max_steps(0);
        let _ = g.checkpoint();
        let partial = Outcome::from_governor(7, Some(&g));
        assert!(partial.truncated());
        assert_eq!(partial.verdict, Verdict::Aborted(AbortReason::Fuel));
        assert_eq!(format!("{}", partial.verdict), "aborted (fuel)");
    }
}
