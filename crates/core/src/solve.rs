//! A backtracking solver for conjunctive path constraints.
//!
//! All evaluators in this crate reduce to the same search problem: find a
//! matching morphism `h : V_q → V_D` such that
//!
//! - every *free edge* `(x, M, y)` is witnessed by a path `h(x) →* h(y)`
//!   labelled by a word of `L(M)` (single-walker product reachability), and
//! - every *group* `((x₁…x_s), (y₁…y_s), spec)` is witnessed by a tuple of
//!   paths `h(xᵢ) →* h(yᵢ)` whose labels jointly satisfy the group's
//!   [`SyncSpec`] (synchronized product search).
//!
//! CRPQs use only free edges; simple CXRPQs (Lemma 3) add equality groups
//! per string variable; ECRPQs add arbitrary regular-relation groups.

use crate::pattern::NodeVar;
use crate::reach::{ReachCache, ReachStats};
use crate::sync::{sync_sources, sync_targets, SyncSearch, SyncSpec};
use cxrpq_graph::{GraphDb, NodeId};
use std::collections::HashMap;

/// A single-walker constraint `(src) -L(M)-> (dst)`.
pub struct FreeEdge {
    /// Source node variable.
    pub src: NodeVar,
    /// Target node variable.
    pub dst: NodeVar,
    /// Reachability cache for the edge automaton.
    pub cache: ReachCache,
}

/// A synchronized multi-walker constraint.
pub struct Group {
    /// Source node variable per walker.
    pub srcs: Vec<NodeVar>,
    /// Target node variable per walker.
    pub dsts: Vec<NodeVar>,
    /// The group specification (per-walker NFAs + relation).
    pub spec: SyncSpec,
    reversed: Option<SyncSpec>,
}

impl Group {
    /// Creates a group constraint.
    pub fn new(srcs: Vec<NodeVar>, dsts: Vec<NodeVar>, spec: SyncSpec) -> Self {
        assert_eq!(srcs.len(), spec.arity());
        assert_eq!(dsts.len(), spec.arity());
        Self {
            srcs,
            dsts,
            spec,
            reversed: None,
        }
    }

    fn reversed(&mut self) -> &SyncSpec {
        if self.reversed.is_none() {
            self.reversed = Some(self.spec.reversed());
        }
        self.reversed.as_ref().unwrap()
    }
}

/// The constraint-solving problem.
pub struct Problem {
    /// Number of node variables.
    pub node_count: usize,
    /// Single-walker constraints.
    pub free_edges: Vec<FreeEdge>,
    /// Synchronized-group constraints.
    pub groups: Vec<Group>,
    /// Exploration statistics (product states visited across all searches).
    pub stats: ReachStats,
}

/// Candidate sweeps prewarm reachability caches in batches of one
/// source-membership stripe (the `u64` word width of `reach_all`), so a
/// batch costs one wavefront pass and an early-exiting search wastes at
/// most the rest of one stripe.
const SEED_BATCH: usize = 64;

impl Problem {
    /// An empty problem over `node_count` node variables.
    pub fn new(node_count: usize) -> Self {
        Self {
            node_count,
            free_edges: Vec::new(),
            groups: Vec::new(),
            stats: ReachStats::default(),
        }
    }

    /// Batch-memoizes every free edge's forward reachability for all
    /// database nodes (one multi-source wavefront per edge automaton and
    /// 64-node stripe).
    ///
    /// Worth it for exhaustive enumeration (`answers`-style calls that
    /// never early-exit): the backtracking sweep queries most sources of
    /// most edges anyway, and the batched pass amortizes the shared
    /// explored region across sources. Early-exiting calls (`boolean`,
    /// `check`) should skip it and rely on the chunked prewarm inside the
    /// seed loop instead.
    pub fn prefill_free_edges(&mut self, db: &GraphDb) {
        let nodes: Vec<NodeId> = db.nodes().collect();
        for e in &mut self.free_edges {
            e.cache.fill_targets(db, &nodes);
        }
    }

    /// Runs the solver. `pinned` pre-binds node variables (the Check
    /// problem); `required` lists variables that must be bound in every
    /// reported solution even when unconstrained (output variables).
    /// `on_solution` returns `true` to stop the search.
    pub fn solve(
        &mut self,
        db: &GraphDb,
        pinned: &HashMap<NodeVar, NodeId>,
        required: &[NodeVar],
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        let mut bindings: Vec<Option<NodeId>> = vec![None; self.node_count];
        for (&v, &n) in pinned {
            bindings[v.index()] = Some(n);
        }
        let mut edge_done = vec![false; self.free_edges.len()];
        let mut group_done = vec![false; self.groups.len()];
        self.recurse(db, &mut bindings, &mut edge_done, &mut group_done, required, on_solution)
    }

    fn recurse(
        &mut self,
        db: &GraphDb,
        bindings: &mut Vec<Option<NodeId>>,
        edge_done: &mut Vec<bool>,
        group_done: &mut Vec<bool>,
        required: &[NodeVar],
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        // 1. Check any fully bound free edge.
        for i in 0..self.free_edges.len() {
            if edge_done[i] {
                continue;
            }
            let e = &mut self.free_edges[i];
            if let (Some(u), Some(v)) = (bindings[e.src.index()], bindings[e.dst.index()]) {
                if !e.cache.connects(db, u, v) {
                    return false;
                }
                edge_done[i] = true;
                let r = self.recurse(db, bindings, edge_done, group_done, required, on_solution);
                edge_done[i] = false;
                return r;
            }
        }
        // 2. Check any fully bound group.
        for i in 0..self.groups.len() {
            if group_done[i] {
                continue;
            }
            let all_bound = self.groups[i]
                .srcs
                .iter()
                .chain(self.groups[i].dsts.iter())
                .all(|v| bindings[v.index()].is_some());
            if all_bound {
                let starts: Vec<NodeId> = self.groups[i]
                    .srcs
                    .iter()
                    .map(|v| bindings[v.index()].unwrap())
                    .collect();
                let ends: Vec<NodeId> = self.groups[i]
                    .dsts
                    .iter()
                    .map(|v| bindings[v.index()].unwrap())
                    .collect();
                let ok = !SyncSearch::forward(db, &self.groups[i].spec)
                    .run(&starts, Some(&ends), Some(&self.stats))
                    .is_empty();
                if !ok {
                    return false;
                }
                group_done[i] = true;
                let r = self.recurse(db, bindings, edge_done, group_done, required, on_solution);
                group_done[i] = false;
                return r;
            }
        }
        // 3. Extend along a half-bound free edge.
        for i in 0..self.free_edges.len() {
            if edge_done[i] {
                continue;
            }
            let (src, dst) = (self.free_edges[i].src, self.free_edges[i].dst);
            let (bs, bd) = (bindings[src.index()], bindings[dst.index()]);
            if bs.is_some() || bd.is_some() {
                edge_done[i] = true;
                let candidates: Vec<NodeId> = if let Some(u) = bs {
                    self.free_edges[i].targets_sorted(db, u, true)
                } else {
                    self.free_edges[i].targets_sorted(db, bd.unwrap(), false)
                };
                let var = if bs.is_some() { dst } else { src };
                for c in candidates {
                    bindings[var.index()] = Some(c);
                    if self.recurse(db, bindings, edge_done, group_done, required, on_solution) {
                        bindings[var.index()] = None;
                        edge_done[i] = false;
                        return true;
                    }
                    bindings[var.index()] = None;
                }
                edge_done[i] = false;
                return false;
            }
        }
        // 4. Extend along a group with one side fully bound.
        for i in 0..self.groups.len() {
            if group_done[i] {
                continue;
            }
            let srcs_bound = self.groups[i]
                .srcs
                .iter()
                .all(|v| bindings[v.index()].is_some());
            let dsts_bound = self.groups[i]
                .dsts
                .iter()
                .all(|v| bindings[v.index()].is_some());
            if srcs_bound || dsts_bound {
                group_done[i] = true;
                let (fixed_vars, open_vars, tuples) = if srcs_bound {
                    let starts: Vec<NodeId> = self.groups[i]
                        .srcs
                        .iter()
                        .map(|v| bindings[v.index()].unwrap())
                        .collect();
                    let tuples =
                        sync_targets(db, &self.groups[i].spec, &starts, Some(&self.stats));
                    (
                        self.groups[i].srcs.clone(),
                        self.groups[i].dsts.clone(),
                        tuples,
                    )
                } else {
                    let ends: Vec<NodeId> = self.groups[i]
                        .dsts
                        .iter()
                        .map(|v| bindings[v.index()].unwrap())
                        .collect();
                    let rev = self.groups[i].reversed().clone();
                    // Walk the database *backwards* under the reversed spec
                    // to enumerate source tuples.
                    let tuples = sync_sources(db, &rev, &ends, Some(&self.stats));
                    (
                        self.groups[i].dsts.clone(),
                        self.groups[i].srcs.clone(),
                        tuples,
                    )
                };
                let _ = fixed_vars;
                'tuple: for tup in tuples {
                    // Bind open vars consistently (a variable may repeat and
                    // may already be bound).
                    let mut newly: Vec<NodeVar> = Vec::new();
                    for (var, node) in open_vars.iter().zip(tup.iter()) {
                        match bindings[var.index()] {
                            Some(b) if b != *node => {
                                for v in newly.drain(..) {
                                    bindings[v.index()] = None;
                                }
                                continue 'tuple;
                            }
                            Some(_) => {}
                            None => {
                                bindings[var.index()] = Some(*node);
                                newly.push(*var);
                            }
                        }
                    }
                    let hit =
                        self.recurse(db, bindings, edge_done, group_done, required, on_solution);
                    for v in newly {
                        bindings[v.index()] = None;
                    }
                    if hit {
                        group_done[i] = false;
                        return true;
                    }
                }
                group_done[i] = false;
                return false;
            }
        }
        // 5. Seed: bind some variable occurring in a pending constraint.
        let seed_var = self
            .free_edges
            .iter()
            .zip(edge_done.iter())
            .filter(|(_, d)| !**d)
            .map(|(e, _)| e.src)
            .chain(
                self.groups
                    .iter()
                    .zip(group_done.iter())
                    .filter(|(_, d)| !**d)
                    .flat_map(|(g, _)| g.srcs.iter().copied()),
            )
            .find(|v| bindings[v.index()].is_none());
        if let Some(var) = seed_var {
            // Sweep the candidate nodes in stripe-sized chunks, prewarming
            // the cache of every pending free edge touching `var` with one
            // batched wavefront per chunk: the `connects`/`targets` calls
            // the recursion makes after binding `var` are then memo hits.
            // The first chunk stays per-source — a boolean/check call that
            // succeeds among the first candidates (the common early exit)
            // then never pays for a wavefront, and a sweep that gets past
            // it batches everything from the second chunk on. Only the
            // current 64-node chunk is ever materialized (seeding recurses,
            // so a full candidate Vec here would be allocated once per
            // outer binding).
            let n = db.node_count();
            let mut chunk: Vec<NodeId> = Vec::with_capacity(SEED_BATCH);
            for (chunk_idx, lo) in (0..n).step_by(SEED_BATCH).enumerate() {
                chunk.clear();
                chunk.extend((lo..(lo + SEED_BATCH).min(n)).map(|i| NodeId(i as u32)));
                if chunk_idx > 0 {
                    for (i, e) in self.free_edges.iter_mut().enumerate() {
                        if edge_done[i] {
                            continue;
                        }
                        if e.src == var {
                            e.cache.fill_targets(db, &chunk);
                        }
                        if e.dst == var {
                            e.cache.fill_sources(db, &chunk);
                        }
                    }
                }
                for &node in &chunk {
                    bindings[var.index()] = Some(node);
                    if self.recurse(db, bindings, edge_done, group_done, required, on_solution) {
                        bindings[var.index()] = None;
                        return true;
                    }
                    bindings[var.index()] = None;
                }
            }
            return false;
        }
        // All constraints satisfied: bind required-but-unbound variables.
        if let Some(&var) = required
            .iter()
            .find(|v| bindings[v.index()].is_none())
        {
            for node in db.nodes() {
                bindings[var.index()] = Some(node);
                if self.recurse(db, bindings, edge_done, group_done, required, on_solution) {
                    bindings[var.index()] = None;
                    return true;
                }
                bindings[var.index()] = None;
            }
            return false;
        }
        on_solution(bindings)
    }
}

impl FreeEdge {
    fn targets_sorted(&mut self, db: &GraphDb, from: NodeId, forward: bool) -> Vec<NodeId> {
        let set = if forward {
            self.cache.targets(db, from)
        } else {
            self.cache.sources(db, from)
        };
        let mut v: Vec<NodeId> = set.iter().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_graph::GraphBuilder;
    use cxrpq_automata::{parse_regex, Nfa};
    use cxrpq_graph::Alphabet;
    use std::sync::Arc;

    fn db_cycle(word: &str) -> (GraphDb, Vec<NodeId>) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word(word).unwrap();
        let nodes: Vec<NodeId> = (0..w.len()).map(|_| db.add_node()).collect();
        for (i, &s) in w.iter().enumerate() {
            db.add_edge(nodes[i], s, nodes[(i + 1) % w.len()]);
        }
        (db.freeze(), nodes)
    }

    fn nfa(db: &GraphDb, s: &str) -> Nfa {
        let mut a = db.alphabet().clone();
        Nfa::from_regex(&parse_regex(s, &mut a).unwrap())
    }

    #[test]
    fn single_edge_boolean() {
        let (db, _) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "abca")),
        });
        let mut found = false;
        p.solve(&db, &HashMap::new(), &[], &mut |_| {
            found = true;
            true
        });
        assert!(found);
        // No path labelled "aa" on the cycle.
        let mut p2 = Problem::new(2);
        p2.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "aa")),
        });
        let mut found2 = false;
        p2.solve(&db, &HashMap::new(), &[], &mut |_| {
            found2 = true;
            true
        });
        assert!(!found2);
    }

    #[test]
    fn conjunction_shares_nodes() {
        // x -ab-> y and y -ca-> x on the cycle abcabc: y = x+2, and from y
        // reading "ca" lands on y+2 = x+4 ≠ x… on a 6-cycle with word
        // abcabc: positions 0..5; x=0: ab leads to 2; from 2, "ca" = c,a →
        // 2:c->3, 3:a->4 ≠ 0. x=3: ab: 3 is 'a'? word abcabc: edge i labelled
        // w[i]. x=3: a at 3, b at 4 → y=5; from 5: c at 5, a at 0 → 1 ≠ 3.
        // So unsatisfiable; but x -ab-> y, y -cabc-> x is satisfiable (x=0).
        let (db, nodes) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "ab")),
        });
        p.free_edges.push(FreeEdge {
            src: NodeVar(1),
            dst: NodeVar(0),
            cache: ReachCache::new(nfa(&db, "ca")),
        });
        let mut found = false;
        p.solve(&db, &HashMap::new(), &[], &mut |_| {
            found = true;
            true
        });
        assert!(!found);

        let mut p2 = Problem::new(2);
        p2.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "ab")),
        });
        p2.free_edges.push(FreeEdge {
            src: NodeVar(1),
            dst: NodeVar(0),
            cache: ReachCache::new(nfa(&db, "cabc")),
        });
        let mut sol = None;
        p2.solve(&db, &HashMap::new(), &[], &mut |b| {
            sol = Some((b[0].unwrap(), b[1].unwrap()));
            true
        });
        assert_eq!(sol, Some((nodes[0], nodes[2])));
    }

    #[test]
    fn pinned_bindings_check() {
        let (db, nodes) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "abc")),
        });
        let pinned: HashMap<NodeVar, NodeId> =
            [(NodeVar(0), nodes[0]), (NodeVar(1), nodes[3])].into();
        let mut found = false;
        p.solve(&db, &pinned, &[], &mut |_| {
            found = true;
            true
        });
        assert!(found);
        let pinned2: HashMap<NodeVar, NodeId> =
            [(NodeVar(0), nodes[0]), (NodeVar(1), nodes[4])].into();
        let mut found2 = false;
        p.solve(&db, &pinned2, &[], &mut |_| {
            found2 = true;
            true
        });
        assert!(!found2);
    }

    #[test]
    fn group_constraint_in_pattern() {
        // Pattern: x -w-> y, x -w-> z with the same word w ∈ a(b|c): on a
        // graph where only one branch exists, y = z is forced.
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let a = db.alphabet().sym("a");
        let b = db.alphabet().sym("b");
        let c = db.alphabet().sym("c");
        let s = db.add_node();
        let m = db.add_node();
        let t1 = db.add_node();
        let t2 = db.add_node();
        db.add_edge(s, a, m);
        db.add_edge(m, b, t1);
        db.add_edge(m, c, t2);
        let db = db.freeze();
        let mut p = Problem::new(3); // x=0, y=1, z=2
        let def = nfa(&db, "a(b|c)");
        p.groups.push(Group::new(
            vec![NodeVar(0), NodeVar(0)],
            vec![NodeVar(1), NodeVar(2)],
            SyncSpec::equality_group(Some(def), 2),
        ));
        let mut sols = Vec::new();
        p.solve(&db, &HashMap::new(), &[], &mut |bnd| {
            sols.push((bnd[0].unwrap(), bnd[1].unwrap(), bnd[2].unwrap()));
            false
        });
        // Solutions: (s, t1, t1) and (s, t2, t2) — never (s, t1, t2).
        assert!(sols.contains(&(s, t1, t1)));
        assert!(sols.contains(&(s, t2, t2)));
        assert!(!sols.contains(&(s, t1, t2)));
        assert!(!sols.contains(&(s, t2, t1)));
    }

    #[test]
    fn group_solved_backwards_from_pinned_dsts() {
        // Regression: when only the group's *destinations* are pinned, the
        // solver must enumerate source tuples by a backward walk (an earlier
        // version ran the reversed spec forward and produced false
        // negatives).
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word("abc").unwrap();
        let s1 = db.add_node();
        let t1 = db.add_node();
        let s2 = db.add_node();
        let t2 = db.add_node();
        db.add_word_path(s1, &w, t1);
        db.add_word_path(s2, &w, t2);
        // A third path labelled acb, used by the mismatch check below (built
        // up front so the database can be frozen once).
        let w2 = db.alphabet().parse_word("acb").unwrap();
        let s3 = db.add_node();
        let t3 = db.add_node();
        db.add_word_path(s3, &w2, t3);
        let db = db.freeze();
        let mut p = Problem::new(4); // x=0, y=1, u=2, v=3
        p.groups.push(Group::new(
            vec![NodeVar(0), NodeVar(2)],
            vec![NodeVar(1), NodeVar(3)],
            SyncSpec::equality_group(None, 2),
        ));
        // Pin the two destinations; the sources must be found backwards.
        let pinned: HashMap<NodeVar, NodeId> =
            [(NodeVar(1), t1), (NodeVar(3), t2)].into();
        let mut sols = Vec::new();
        p.solve(&db, &pinned, &[], &mut |b| {
            sols.push((b[0].unwrap(), b[2].unwrap()));
            false
        });
        assert!(sols.contains(&(s1, s2)), "missing backward-derived sources");
        // Distinct-word destinations are rejected.
        let pinned2: HashMap<NodeVar, NodeId> =
            [(NodeVar(1), t1), (NodeVar(3), t3)].into();
        let mut sols2 = Vec::new();
        p.solve(&db, &pinned2, &[], &mut |b| {
            sols2.push((b[0].unwrap(), b[2].unwrap()));
            false
        });
        // Short equal suffixes (e.g. ε at the sinks) are fine, but the full
        // chains read abc vs acb and must not pair up.
        assert!(!sols2.contains(&(s1, s3)), "abc cannot equal acb");
    }

    #[test]
    fn required_vars_enumerated() {
        let (db, _) = db_cycle("ab");
        let mut p = Problem::new(1);
        let mut count = 0;
        p.solve(&db, &HashMap::new(), &[NodeVar(0)], &mut |_| {
            count += 1;
            false
        });
        assert_eq!(count, 2); // both cycle nodes
    }
}
