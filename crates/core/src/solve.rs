//! A three-phase pipeline solver for conjunctive path constraints.
//!
//! All evaluators in this crate reduce to the same search problem: find a
//! matching morphism `h : V_q → V_D` such that
//!
//! - every *free edge* `(x, M, y)` is witnessed by a path `h(x) →* h(y)`
//!   labelled by a word of `L(M)` (single-walker product reachability), and
//! - every *group* `((x₁…x_s), (y₁…y_s), spec)` is witnessed by a tuple of
//!   paths `h(xᵢ) →* h(yᵢ)` whose labels jointly satisfy the group's
//!   [`SyncSpec`] (synchronized product search).
//!
//! CRPQs use only free edges; simple CXRPQs (Lemma 3) add equality groups
//! per string variable; ECRPQs add arbitrary regular-relation groups.
//!
//! [`Problem::solve`] runs three phases (see [`SolveOptions`] for the
//! knobs; [`SolveOptions::naive`] restores the historical single-pass
//! backtracker as a differential-testing reference):
//!
//! 1. **Plan** ([`crate::plan`]) — build the constraint graph over node
//!    variables, estimate per-constraint selectivity from CSR label
//!    statistics, emit a connected cheapest-first variable order.
//! 2. **Prune** ([`crate::domains`]) — semi-join reduction of per-variable
//!    candidate domains to a (capped) fixpoint, with batched
//!    domain-restricted wavefront fills and an adaptive per-source fallback
//!    on long-diameter graphs. Pinned bindings collapse their domains to
//!    singletons first; an emptied domain ends the search without
//!    enumeration. Groups contribute necessary conditions: one synthesized
//!    pruning-only edge per selective group walker (def-language
//!    reachability for equality groups), joined into the same fixpoint and
//!    dropped before enumeration.
//! 3. **Enumerate** — backtrack over the pruned domains in plan order,
//!    checking fully bound constraints eagerly and extending along the
//!    cheapest half-bound constraint; early-exit semantics (`on_solution`
//!    returning `true`) are unchanged.
//!
//! **Worst-case-optimal leapfrog intersection.** On *cyclic* constraint
//! components (detected by the planner's cycle-rank classification — see
//! [`crate::plan`]) binary extension is provably suboptimal: extending a
//! triangle `x -a-> y -b-> z -c-> x` along one edge materializes every
//! `(x, y, z)` wedge before the closing atom filters it. The enumerator
//! therefore switches to a multiway sorted-set intersection when several
//! pending constraints have already bound their other endpoint on the
//! variable being extended: every such constraint contributes a sorted
//! candidate set, the pruned domain joins as one more sorted set, and a
//! leapfrog (seek-to-max) sweep with binary-search `seek_ge` emits exactly
//! the common members — the candidates that *every* incident constraint
//! supports — binding each and marking all participating constraints
//! satisfied at once. Two iterator kinds feed the intersection: direct
//! merged CSR [`EdgeRun`]s for atoms whose language is a set of
//! single-symbol words (the database rows *are* their reach adjacency), and
//! sorted reach-adjacency rows materialized once per `(source, atom)` from
//! the [`ReachCache`] for general regular-path atoms. [`Strategy`] selects
//! the routing: `Auto` (cyclic components leapfrog, trees keep the plain
//! backtracker), or a forced `Leapfrog`/`Backtrack` override for the
//! differential suites. Governor checkpoints and projection-pushdown dedup
//! carry over unchanged — a leapfrog binding is a binding like any other.
//!
//! **Projection pushdown** ([`SolveOptions::projected`]): when on, the
//! `required` tuple is treated as an *output projection*. Variables outside
//! it are *existential* — the moment every output variable is bound, the
//! projected tuple of the whole subtree below is fixed, so the enumerator
//! asks for a single witness of the remaining constraints (an early-exiting
//! sub-search) instead of backtracking over every completion, and emits
//! each distinct projected tuple exactly once (deduplicated at the
//! enumerator with packed-key sets, never by materializing full morphisms).
//! When the last output variable is bound by the final pending constraint,
//! the semi-joined candidate set itself is the witness: candidates are
//! emitted leaf-positioned with no sub-search at all. Boolean calls (empty
//! output) are the degenerate case where *every* variable is existential —
//! on satisfiable arc-consistent instances the enumerator then performs
//! zero backtracking steps ([`PipelineStats::backtrack_steps`]).
//!
//! Under projection, `on_solution` observes bindings in which all
//! *required* variables are bound; existential variables may be `None`
//! (they are restored by the witness sub-search on its way out).

use crate::domains::Domains;
use crate::governor::Governor;
use crate::pattern::NodeVar;
use crate::plan::{single_step_symbols, SolvePlan};
use crate::reach::{ReachCache, ReachStats};
use crate::sync::{sync_sources_governed, sync_targets_governed, SyncSearch, SyncSpec};
use cxrpq_graph::{DenseBitSet, EdgeRun, GraphDb, NodeId, Symbol};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};
use std::rc::Rc;
use std::sync::Arc;

/// A single-walker constraint `(src) -L(M)-> (dst)`.
pub struct FreeEdge {
    /// Source node variable.
    pub src: NodeVar,
    /// Target node variable.
    pub dst: NodeVar,
    /// Reachability cache for the edge automaton.
    pub cache: ReachCache,
}

impl FreeEdge {
    /// The edge's candidate targets (or sources, `forward: false`) of
    /// `from`, sorted ascending for deterministic extension order.
    fn targets_sorted(&mut self, db: &GraphDb, from: NodeId, forward: bool) -> Vec<NodeId> {
        let set = if forward {
            self.cache.targets(db, from)
        } else {
            self.cache.sources(db, from)
        };
        let mut v: Vec<NodeId> = set.iter().copied().collect();
        v.sort();
        v
    }
}

/// A synchronized multi-walker constraint.
pub struct Group {
    /// Source node variable per walker.
    pub srcs: Vec<NodeVar>,
    /// Target node variable per walker.
    pub dsts: Vec<NodeVar>,
    /// The group specification (per-walker NFAs + relation).
    pub spec: SyncSpec,
    reversed: Option<SyncSpec>,
}

impl Group {
    /// Creates a group constraint.
    pub fn new(srcs: Vec<NodeVar>, dsts: Vec<NodeVar>, spec: SyncSpec) -> Self {
        assert_eq!(srcs.len(), spec.arity());
        assert_eq!(dsts.len(), spec.arity());
        Self {
            srcs,
            dsts,
            spec,
            reversed: None,
        }
    }

    /// Computes and caches the reversed spec; later uses borrow the cached
    /// value instead of cloning it.
    fn ensure_reversed(&mut self) {
        if self.reversed.is_none() {
            self.reversed = Some(self.spec.reversed());
        }
    }
}

/// Enumeration strategy for phase 3 (see the module docs' leapfrog
/// section).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Route cyclic constraint components to the leapfrog multiway
    /// intersection, keep trees on the plain backtracker.
    #[default]
    Auto,
    /// Force the leapfrog intersection wherever several bound constraints
    /// meet an unbound variable, cyclic or not (differential testing).
    Leapfrog,
    /// Never intersect multiway — the PR 5 binary-extension backtracker
    /// (differential testing and the bench baseline).
    Backtrack,
}

/// Knobs for [`Problem::solve_with`]: which pipeline phases run.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Phase 1: order variables and constraints by estimated cost (off =
    /// query-text order).
    pub plan: bool,
    /// Phase 2: semi-join domain reduction before enumeration.
    pub prune: bool,
    /// Cap on semi-join passes (the fixpoint usually lands earlier).
    pub max_prune_rounds: usize,
    /// Skip the prune phase when no binding is pinned: without a pinned
    /// singleton to seed the fixpoint, the first pass fills the full
    /// universe of every edge — on long-diameter shapes one BFS per node
    /// per edge — which can dwarf a search that exits on its first
    /// candidates. Early-exiting calls (`boolean`) set this and stay
    /// lazy; pinned calls (`check`/`witness_for`) still prune, because a
    /// singleton-seeded semi-join is one search from the pinned side.
    /// Exhaustive enumeration leaves it off (it sweeps most sources
    /// anyway, so the fills are never wasted).
    pub lazy_unpinned: bool,
    /// Projection pushdown: treat `required` as the output projection,
    /// existentially eliminate every other variable (one witness instead
    /// of full backtracking once all outputs are bound) and report each
    /// distinct projected tuple exactly once. Off in every preset —
    /// callers that only read the required variables opt in via
    /// [`SolveOptions::projected`]; callers that read the full morphism
    /// (witness extraction, raw `solve` uses) must leave it off.
    pub project: bool,
    /// Phase 0: static query analysis ([`crate::analyze`]) before
    /// planning — emptiness/footprint refutation (empty answers with zero
    /// search steps), ε-only variable unification, containment-based atom
    /// subsumption and Σ*-universality flagging, with a
    /// [`Diagnostics`](crate::diagnostics::Diagnostics) report in
    /// [`PipelineStats::analysis`]. On in the pipeline presets; the naive
    /// preset stays unanalyzed as the differential reference.
    pub analyze: bool,
    /// State budget per bounded inclusion/universality check in the
    /// analyzer; checks that exceed it are abandoned (both atoms kept,
    /// `containment-capped` diagnostic).
    pub containment_budget: usize,
    /// Resource governor for this run (`None` = ungoverned): every search
    /// phase checkpoints against it, and a trip drains the whole pipeline
    /// cooperatively — `solve_with` then returns having reported only a
    /// (sound, partial) subset of solutions, with every [`ReachCache`]
    /// guaranteed free of partially-filled entries. Read the verdict from
    /// the governor afterwards ([`Governor::verdict`]).
    pub governor: Option<Arc<Governor>>,
    /// Enumeration strategy (see [`Strategy`]). Leapfrog routing needs the
    /// plan's component classification, so under `plan: false` every
    /// strategy degrades to the backtracker.
    pub strategy: Strategy,
    /// A previously built [`SolvePlan`] to reuse instead of rebuilding in
    /// phase 1 (the [`crate::cache::QueryCache`] hit path). Only consulted
    /// on unpinned runs whose problem shape matches the seed (variable,
    /// edge, and group counts) — a pinned binding or a shape mismatch
    /// falls back to a fresh build, so a stale seed can cost time but
    /// never correctness: the plan only orders the search.
    pub plan_seed: Option<Arc<SolvePlan>>,
}

impl SolveOptions {
    /// Default state budget for the analyzer's bounded containment checks.
    pub const DEFAULT_CONTAINMENT_BUDGET: usize = 512;

    /// The full pipeline for exhaustive enumeration (`answers`-style calls).
    pub fn pipeline() -> Self {
        Self {
            plan: true,
            prune: true,
            max_prune_rounds: 8,
            lazy_unpinned: false,
            project: false,
            analyze: true,
            containment_budget: Self::DEFAULT_CONTAINMENT_BUDGET,
            governor: None,
            strategy: Strategy::Auto,
            plan_seed: None,
        }
    }

    /// The pipeline with a low round cap, for early-exiting calls
    /// (`boolean`/`check`/`witness`) where a long fixpoint chase can cost
    /// more than the search it prunes; unpinned calls skip pruning
    /// entirely and stay lazy (see [`SolveOptions::lazy_unpinned`]).
    pub fn early_exit() -> Self {
        Self {
            plan: true,
            prune: true,
            max_prune_rounds: 2,
            lazy_unpinned: true,
            project: false,
            analyze: true,
            containment_budget: Self::DEFAULT_CONTAINMENT_BUDGET,
            governor: None,
            strategy: Strategy::Auto,
            plan_seed: None,
        }
    }

    /// The historical behavior: no planning, no pruning, no analysis,
    /// query-text order. Retained as the reference path for differential
    /// tests and the `e18_solver_pipeline` baseline.
    pub fn naive() -> Self {
        Self {
            plan: false,
            prune: false,
            max_prune_rounds: 0,
            lazy_unpinned: false,
            project: false,
            analyze: false,
            containment_budget: Self::DEFAULT_CONTAINMENT_BUDGET,
            governor: None,
            strategy: Strategy::Backtrack,
            plan_seed: None,
        }
    }

    /// Turns on projection pushdown (see [`SolveOptions::project`]);
    /// composes with any preset, e.g.
    /// `SolveOptions::pipeline().projected()`.
    pub fn projected(mut self) -> Self {
        self.project = true;
        self
    }

    /// Turns off the static analyzer (see [`SolveOptions::analyze`]);
    /// composes with any preset. The differential property suite runs
    /// every preset both analyzed and unanalyzed.
    pub fn unanalyzed(mut self) -> Self {
        self.analyze = false;
        self
    }

    /// Attaches a resource governor (see [`SolveOptions::governor`]);
    /// composes with any preset, e.g.
    /// `SolveOptions::pipeline().governed(gov)`.
    pub fn governed(mut self, gov: Arc<Governor>) -> Self {
        self.governor = Some(gov);
        self
    }

    /// Overrides the enumeration strategy (see [`Strategy`]); composes with
    /// any preset, e.g.
    /// `SolveOptions::pipeline().with_strategy(Strategy::Backtrack)`.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Seeds phase 1 with a cached plan (see [`SolveOptions::plan_seed`]);
    /// composes with any preset.
    pub fn with_plan_seed(mut self, seed: Arc<SolvePlan>) -> Self {
        self.plan_seed = Some(seed);
        self
    }
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self::pipeline()
    }
}

/// Per-phase observability for one [`Problem::solve_with`] run.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// The plan's variable order (empty when planning was off).
    pub var_order: Vec<NodeVar>,
    /// Estimated cost per free edge (plan phase).
    pub edge_cost: Vec<u64>,
    /// Estimated cost per group (plan phase).
    pub group_cost: Vec<u64>,
    /// Semi-join passes executed (0 when pruning was off or trivial).
    pub rounds: usize,
    /// Whether the adaptive probe routed prune fills to per-source sweeps
    /// (long-diameter graphs) instead of batched wavefronts.
    pub per_source_sweeps: bool,
    /// Domain size per node variable before pruning (pinned variables are
    /// already singletons here).
    pub domain_before: Vec<usize>,
    /// Domain size per node variable after pruning.
    pub domain_after: Vec<usize>,
    /// Variables in the plan's existential suffix, eliminated by
    /// projection pushdown instead of being backtracked over (0 when
    /// [`SolveOptions::project`] is off; the whole variable order for
    /// Boolean calls).
    pub eliminated_vars: usize,
    /// Enumeration-phase backtracking steps: candidate bindings retracted
    /// after their subtree was exhausted without reporting any solution
    /// (a candidate whose subtree emitted tuples and then continued is
    /// productive, not a backtrack). Zero on satisfiable arc-consistent
    /// Boolean instances (the existential fast path takes the first
    /// supported candidate at every level).
    pub backtrack_steps: usize,
    /// Constraint components routed to the leapfrog multiway intersection
    /// ([`Strategy`]): the cyclic components under `Auto`, every component
    /// under `Leapfrog`, zero under `Backtrack` or without a plan.
    pub leapfrog_components: usize,
    /// Constraint components kept on the plain backtracker.
    pub tree_components: usize,
    /// `seek_ge` probes issued by leapfrog intersections during
    /// enumeration (0 when no variable took the leapfrog path).
    pub intersection_seeks: usize,
    /// The static analyzer's report (`None` when [`SolveOptions::analyze`]
    /// was off). A statically refuted query records `analysis` with
    /// `stats.unsat == true` and all other fields empty: no plan, no
    /// prune, `backtrack_steps == 0`.
    pub analysis: Option<crate::analyze::AnalysisReport>,
    /// The phase-1 plan this run used (freshly built or replayed from
    /// [`SolveOptions::plan_seed`]); `None` when planning and pruning were
    /// both off. The [`crate::cache::QueryCache`] harvests this to seed
    /// later runs of the same query.
    pub plan_artifact: Option<Arc<SolvePlan>>,
}

impl PipelineStats {
    /// Sum of domain sizes before pruning.
    pub fn total_before(&self) -> usize {
        self.domain_before.iter().sum()
    }

    /// Sum of domain sizes after pruning.
    pub fn total_after(&self) -> usize {
        self.domain_after.iter().sum()
    }
}

/// The constraint-solving problem.
pub struct Problem {
    /// Number of node variables.
    pub node_count: usize,
    /// Single-walker constraints.
    pub free_edges: Vec<FreeEdge>,
    /// Synchronized-group constraints.
    pub groups: Vec<Group>,
    /// Exploration statistics (product states visited across all searches).
    pub stats: ReachStats,
    /// Per-phase statistics of the most recent [`Problem::solve_with`] run
    /// (`None` for naive runs).
    pub pipeline: Option<PipelineStats>,
}

/// Candidate sweeps prewarm reachability caches in batches of one
/// source-membership stripe (the `u64` word width of `reach_all`), so a
/// batch costs one wavefront pass and an early-exiting search wastes at
/// most the rest of one stripe.
const SEED_BATCH: usize = 64;

/// Shared read-only context for one enumeration (phase 3).
struct EnumCtx<'a> {
    plan: Option<&'a SolvePlan>,
    domains: Option<&'a Domains>,
    /// The prune phase's probe decision, reused by seed-sweep prewarms.
    per_source_sweeps: bool,
    /// The run's governor (the shared disabled one when ungoverned): one
    /// checkpoint per recursion node, candidate loops drain on a trip.
    gov: &'a Governor,
    /// Per-variable: extend by leapfrog multiway intersection instead of
    /// binary extension (empty = all backtrack, e.g. naive runs).
    lf_vars: Vec<bool>,
    /// Per free edge: the accepted symbols when the atom's language is a
    /// set of single-symbol words, so its candidate sets are direct CSR
    /// runs ([`single_step_symbols`]); `None` routes through materialized
    /// sorted reach rows. Only populated when some variable leapfrogs.
    single_step: Vec<Option<Vec<Symbol>>>,
}

impl EnumCtx<'_> {
    #[inline]
    fn admits(&self, v: NodeVar, n: NodeId) -> bool {
        self.domains.is_none_or(|d| d.contains(v, n))
    }

    #[inline]
    fn leapfrogs(&self, v: NodeVar) -> bool {
        self.lf_vars.get(v.index()).copied().unwrap_or(false)
    }
}

/// One sorted ascending candidate set of a leapfrog intersection, with a
/// monotone `seek_ge` cursor (see the module docs' leapfrog section).
enum SortedSet<'a> {
    /// A single-step atom's candidates straight off the CSR: one merged
    /// base+delta run per accepted symbol, each `(label, neighbour)`-sorted
    /// — the union view seeks every run and takes the minimum.
    Runs(Vec<(Symbol, EdgeRun<'a>)>),
    /// A materialized sorted reach-adjacency row (general regular-path
    /// atom), shared with the [`ReachCache`]'s per-source memo.
    Row(Rc<[NodeId]>, usize),
    /// The variable's pruned domain.
    Bits(&'a DenseBitSet),
}

impl SortedSet<'_> {
    /// The smallest member `≥ n`, or `None` when the set is exhausted
    /// above it. Callers seek with non-decreasing `n` (the leapfrog
    /// frontier), which lets the row cursor advance monotonically.
    #[inline]
    fn seek_ge(&mut self, n: NodeId) -> Option<NodeId> {
        match self {
            SortedSet::Runs(runs) => runs
                .iter()
                .filter_map(|&(a, r)| r.seek_ge((a, n)).map(|(_, v)| v))
                .min(),
            SortedSet::Row(row, pos) => {
                *pos += row[*pos..].partition_point(|&v| v < n);
                row.get(*pos).copied()
            }
            SortedSet::Bits(b) => b.seek_ge(n.index()).map(|i| NodeId(i as u32)),
        }
    }
}

/// A multiply–rotate hasher for the projection dedup sets: keys are either
/// exact packed integers (arity ≤ 4) or short node-id slices, probed once
/// per enumeration leaf, so a few-ns mix beats SipHash by an order of
/// magnitude on the hot shapes.
struct ProjHasher(u64);

impl ProjHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for ProjHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^ (h >> 33)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[derive(Clone, Default)]
struct BuildProjHasher;

impl BuildHasher for BuildProjHasher {
    type Hasher = ProjHasher;
    fn build_hasher(&self) -> ProjHasher {
        ProjHasher(0x9e37_79b9_7f4a_7c15)
    }
}

/// Projected tuples already emitted, keyed exactly: arities ≤ 4 pack the
/// `u32` node ids into one `u128` (collision-free), wider tuples fall back
/// to boxed slices (probed without allocating via `Borrow<[NodeId]>`).
enum ProjSeen {
    Small(HashSet<u128, BuildProjHasher>),
    Wide(HashSet<Box<[NodeId]>, BuildProjHasher>),
}

impl ProjSeen {
    fn new(arity: usize) -> Self {
        if arity <= 4 {
            Self::Small(HashSet::with_hasher(BuildProjHasher))
        } else {
            Self::Wide(HashSet::with_hasher(BuildProjHasher))
        }
    }
}

/// Mutable enumeration state threaded through the recursion.
struct EnumState {
    bindings: Vec<Option<NodeId>>,
    edge_done: Vec<bool>,
    group_done: Vec<bool>,
    /// The required (output) tuple, in projection order.
    required: Vec<NodeVar>,
    /// `is_output[v]` — whether variable `v` occurs in `required`.
    is_output: Vec<bool>,
    /// Distinct required variables currently unbound; the existential
    /// cutoff fires when this reaches zero under projection.
    unbound_outputs: usize,
    /// Projection pushdown on for this run.
    project: bool,
    /// Inside a one-witness sub-search (suppresses nested cutoffs).
    existential: bool,
    /// Whether duplicate projections are possible at all: false when every
    /// constrained variable is an output variable (distinct full
    /// assignments then project to distinct tuples), letting hot loops
    /// skip the seen-set entirely.
    dedup_needed: bool,
    seen: ProjSeen,
    /// Reusable projection buffer for wide-arity probes.
    proj_buf: Vec<NodeId>,
    /// Solutions reported plus duplicates suppressed so far; loops compare
    /// it across a recursion to tell a fruitless subtree from one that
    /// either emitted and continued or was pruned as pure redundancy.
    progress: u64,
    /// Candidate bindings retracted after a fruitless subtree.
    backtracks: usize,
    /// `seek_ge` probes issued by leapfrog intersections.
    seeks: usize,
}

impl EnumState {
    #[inline]
    fn bind(&mut self, v: NodeVar, n: NodeId) {
        debug_assert!(self.bindings[v.index()].is_none());
        self.bindings[v.index()] = Some(n);
        if self.is_output[v.index()] {
            self.unbound_outputs -= 1;
        }
    }

    #[inline]
    fn unbind(&mut self, v: NodeVar) {
        debug_assert!(self.bindings[v.index()].is_some());
        if self.is_output[v.index()] {
            self.unbound_outputs += 1;
        }
        self.bindings[v.index()] = None;
    }

    /// Packs the current projection (all required variables are bound when
    /// this is called) into the small-arity key. The leading 1 bit
    /// distinguishes shorter tuples from zero-padded longer ones at
    /// arities ≤ 3; at arity 4 the four 32-bit ids fill the `u128` exactly
    /// and the sentinel shifts out, which is still collision-free because
    /// every key of one run has the same arity — the seen-set never mixes
    /// arities. (Raising the small-arity bound past 4 would truncate ids;
    /// `ProjSeen::new` gates on it.)
    #[inline]
    fn proj_key(&self) -> u128 {
        let mut key = 1u128;
        for v in &self.required {
            let n = self.bindings[v.index()].expect("projection variable bound");
            key = (key << 32) | n.0 as u128;
        }
        key
    }

    /// Fills the wide-arity probe buffer with the current projection.
    fn fill_proj_buf(&mut self) {
        self.proj_buf.clear();
        for i in 0..self.required.len() {
            let v = self.required[i];
            self.proj_buf
                .push(self.bindings[v.index()].expect("projection variable bound"));
        }
    }

    /// Whether the current projection was already emitted.
    fn seen_contains(&mut self) -> bool {
        match &self.seen {
            ProjSeen::Small(_) => {
                let key = self.proj_key();
                let ProjSeen::Small(s) = &self.seen else {
                    unreachable!()
                };
                s.contains(&key)
            }
            ProjSeen::Wide(_) => {
                self.fill_proj_buf();
                let ProjSeen::Wide(s) = &self.seen else {
                    unreachable!()
                };
                s.contains(self.proj_buf.as_slice())
            }
        }
    }

    /// Marks the current projection emitted; returns `true` when it was
    /// new.
    fn seen_insert(&mut self) -> bool {
        match &self.seen {
            ProjSeen::Small(_) => {
                let key = self.proj_key();
                let ProjSeen::Small(s) = &mut self.seen else {
                    unreachable!()
                };
                s.insert(key)
            }
            ProjSeen::Wide(_) => {
                self.fill_proj_buf();
                let ProjSeen::Wide(s) = &mut self.seen else {
                    unreachable!()
                };
                if s.contains(self.proj_buf.as_slice()) {
                    false
                } else {
                    s.insert(self.proj_buf.clone().into_boxed_slice())
                }
            }
        }
    }
}

impl Problem {
    /// An empty problem over `node_count` node variables.
    pub fn new(node_count: usize) -> Self {
        Self {
            node_count,
            free_edges: Vec::new(),
            groups: Vec::new(),
            stats: ReachStats::default(),
            pipeline: None,
        }
    }

    /// Synthesized pruning-only edges from the groups' necessary
    /// conditions: every walker `i` of a group must connect `srcs[i]` to
    /// `dsts[i]` under its own automaton `nfas[i]`; for equality relations
    /// the shared word lies in *every* member language, so each member
    /// automaton is a necessary condition for every walker and the most
    /// selective one serves all endpoint pairs (an undefined equality
    /// group's Σ* members therefore borrow the definition, and a Σ*-first
    /// member list still benefits from a selective reference). Unselective
    /// automata ([`walker_prune_cost`](crate::plan) returns `None`) are
    /// skipped: their semi-join would sweep everything and keep everything.
    ///
    /// Each walker gets its own [`ReachCache`] even when several share one
    /// automaton: fills are domain-restricted to each walker's own
    /// endpoint domain, so the overlap a shared memo would save is
    /// partial, and group arities are small. Revisit if wide groups show
    /// up in profiles.
    fn group_prune_edges(&self, db: &GraphDb) -> (Vec<FreeEdge>, Vec<u64>) {
        let mut edges = Vec::new();
        let mut costs = Vec::new();
        for g in &self.groups {
            if g.spec.relation.is_equality() {
                let best = (0..g.spec.arity())
                    .filter_map(|j| {
                        crate::plan::walker_prune_cost(&g.spec.nfas[j], db).map(|c| (c, j))
                    })
                    .min();
                if let Some((cost, j)) = best {
                    for i in 0..g.spec.arity() {
                        edges.push(FreeEdge {
                            src: g.srcs[i],
                            dst: g.dsts[i],
                            cache: ReachCache::new(g.spec.nfas[j].clone()),
                        });
                        costs.push(cost);
                    }
                }
            } else {
                for i in 0..g.spec.arity() {
                    let Some(cost) = crate::plan::walker_prune_cost(&g.spec.nfas[i], db) else {
                        continue;
                    };
                    edges.push(FreeEdge {
                        src: g.srcs[i],
                        dst: g.dsts[i],
                        cache: ReachCache::new(g.spec.nfas[i].clone()),
                    });
                    costs.push(cost);
                }
            }
        }
        (edges, costs)
    }

    /// Runs the solver with the default (full) pipeline. `pinned` pre-binds
    /// node variables (the Check problem); `required` lists variables that
    /// must be bound in every reported solution even when unconstrained
    /// (output variables). `on_solution` returns `true` to stop the search.
    pub fn solve(
        &mut self,
        db: &GraphDb,
        pinned: &HashMap<NodeVar, NodeId>,
        required: &[NodeVar],
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        self.solve_with(db, pinned, required, &SolveOptions::default(), on_solution)
    }

    /// [`Problem::solve`] with explicit pipeline knobs.
    ///
    /// When [`SolveOptions::analyze`] is on, phase 0 runs the static
    /// analyzer ([`crate::analyze`]) first: a statically refuted query
    /// (empty-language atom, footprint miss, conflicting pins on unified
    /// variables) returns `false` with no search at all; ε-only atoms
    /// unify their endpoint variables; subsumed parallel atoms are
    /// dropped. The rewrite is applied for the duration of this call only
    /// — the problem's constraints are restored on the way out, so
    /// repeated `solve_with` calls observe the original query, and
    /// `on_solution` still sees every original variable bound (merged-away
    /// variables inherit their representative's image).
    pub fn solve_with(
        &mut self,
        db: &GraphDb,
        pinned: &HashMap<NodeVar, NodeId>,
        required: &[NodeVar],
        opts: &SolveOptions,
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        self.pipeline = None;
        // A pinned node outside the database can never be the image of a
        // morphism: no solutions (and no out-of-bounds product search).
        if pinned.values().any(|n| n.index() >= db.node_count()) {
            return false;
        }
        if !opts.analyze {
            return self.solve_core(db, pinned, required, opts, &[], on_solution);
        }

        // Phase 0: static analysis.
        let crate::analyze::Analysis {
            mut report,
            var_rep,
            drop_edges,
            universal,
        } = crate::analyze::analyze(
            self.node_count,
            &self.free_edges,
            &self.groups,
            db,
            &crate::analyze::AnalyzeOptions {
                containment_budget: opts.containment_budget,
            },
        );

        // Pins on ε-unified variables must agree on one image; a conflict
        // is as unsatisfiable as an empty atom.
        let mut pinned_rep: HashMap<NodeVar, NodeId> = HashMap::with_capacity(pinned.len());
        for (&v, &n) in pinned {
            let rep = NodeVar(var_rep[v.index()] as u32);
            if *pinned_rep.entry(rep).or_insert(n) != n {
                report.stats.unsat = true;
            }
        }
        if report.stats.unsat {
            // Statically refuted: empty answers, zero search steps, no
            // plan/prune/enumerate at all.
            self.pipeline = Some(PipelineStats {
                analysis: Some(report),
                ..PipelineStats::default()
            });
            return false;
        }

        // Apply the rewrite: park dropped atoms, remap surviving endpoints
        // onto their union-find representatives, and remember enough to
        // restore the original query afterwards.
        let merged: Vec<(usize, usize)> = (0..self.node_count)
            .map(|v| (v, var_rep[v]))
            .filter(|&(v, r)| v != r)
            .collect();
        let mut parked: Vec<(usize, FreeEdge)> = Vec::new();
        for i in (0..drop_edges.len()).rev() {
            if drop_edges[i] {
                parked.push((i, self.free_edges.remove(i)));
            }
        }
        let universal_kept: Vec<bool> = universal
            .iter()
            .enumerate()
            .filter(|&(i, _)| !drop_edges[i])
            .map(|(_, &u)| u)
            .collect();
        let mut saved_edge_ends: Vec<(NodeVar, NodeVar)> = Vec::new();
        let mut saved_group_ends: Vec<(Vec<NodeVar>, Vec<NodeVar>)> = Vec::new();
        let required_rep: Vec<NodeVar>;
        let mut required_eff = required;
        if !merged.is_empty() {
            for e in &mut self.free_edges {
                saved_edge_ends.push((e.src, e.dst));
                e.src = NodeVar(var_rep[e.src.index()] as u32);
                e.dst = NodeVar(var_rep[e.dst.index()] as u32);
            }
            for g in &mut self.groups {
                saved_group_ends.push((g.srcs.clone(), g.dsts.clone()));
                for v in g.srcs.iter_mut().chain(g.dsts.iter_mut()) {
                    *v = NodeVar(var_rep[v.index()] as u32);
                }
            }
            required_rep = required
                .iter()
                .map(|v| NodeVar(var_rep[v.index()] as u32))
                .collect();
            required_eff = &required_rep;
        }

        let result = if merged.is_empty() {
            self.solve_core(db, pinned, required_eff, opts, &universal_kept, on_solution)
        } else {
            // Merged-away variables inherit their representative's image
            // before the caller observes the solution.
            let mut buf: Vec<Option<NodeId>> = Vec::with_capacity(self.node_count);
            let mut wrapped = |b: &[Option<NodeId>]| {
                buf.clear();
                buf.extend_from_slice(b);
                for &(v, r) in &merged {
                    buf[v] = buf[r];
                }
                on_solution(&buf)
            };
            self.solve_core(
                db,
                &pinned_rep,
                required_eff,
                opts,
                &universal_kept,
                &mut wrapped,
            )
        };

        // Restore the original query shape.
        for (e, (s, d)) in self.free_edges.iter_mut().zip(saved_edge_ends) {
            e.src = s;
            e.dst = d;
        }
        for (g, (ss, ds)) in self.groups.iter_mut().zip(saved_group_ends) {
            g.srcs = ss;
            g.dsts = ds;
        }
        for (i, e) in parked.into_iter().rev() {
            self.free_edges.insert(i, e);
        }

        // Attach the analyzer's report to whatever the core recorded (a
        // bare stats shell when the plan/prune phases were off).
        match &mut self.pipeline {
            Some(ps) => ps.analysis = Some(report),
            none => {
                *none = Some(PipelineStats {
                    analysis: Some(report),
                    ..PipelineStats::default()
                });
            }
        }
        result
    }

    /// Phases 1–3 (plan / prune / enumerate) over the problem as stored.
    /// `universal` flags Σ*-universal free edges the planner orders last
    /// (`&[]` when no analysis ran).
    ///
    /// The run's governor (if any) is attached to every free-edge cache for
    /// the duration of the call and detached afterwards, so a tripped
    /// governor from an aborted run can never silently empty the searches
    /// of a later, ungoverned call against the same problem.
    fn solve_core(
        &mut self,
        db: &GraphDb,
        pinned: &HashMap<NodeVar, NodeId>,
        required: &[NodeVar],
        opts: &SolveOptions,
        universal: &[bool],
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        for e in &mut self.free_edges {
            e.cache.govern(opts.governor.clone());
        }
        let r = self.solve_phases(db, pinned, required, opts, universal, on_solution);
        for e in &mut self.free_edges {
            e.cache.govern(None);
        }
        r
    }

    fn solve_phases(
        &mut self,
        db: &GraphDb,
        pinned: &HashMap<NodeVar, NodeId>,
        required: &[NodeVar],
        opts: &SolveOptions,
        universal: &[bool],
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        let govh = opts.governor.clone();
        let gov: &Governor = govh.as_deref().unwrap_or(Governor::disabled());
        let mut bindings: Vec<Option<NodeId>> = vec![None; self.node_count];
        for (&v, &n) in pinned {
            bindings[v.index()] = Some(n);
        }

        // Phase 1: plan (output-aware: the order splits into the enumerate
        // prefix and the existential suffix). A compatible cached seed
        // replays instead of rebuilding: seeds are keyed per query by the
        // cache, so compatibility only needs the unpinned-shape guard (a
        // pinned binding changes cost estimates, and shape mismatches mean
        // the seed came from a different rewrite of the query).
        let plan = (opts.plan || opts.prune).then(|| {
            let seed = opts.plan_seed.as_deref().filter(|s| {
                pinned.is_empty()
                    && s.var_order.len() == self.node_count
                    && s.edge_cost.len() == self.free_edges.len()
                    && s.group_cost.len() == self.groups.len()
            });
            match seed {
                Some(s) => s.clone(),
                None => SolvePlan::build(
                    self.node_count,
                    &self.free_edges,
                    &self.groups,
                    required,
                    universal,
                    db,
                ),
            }
        });
        let eliminated_vars = match (&plan, opts.project) {
            (Some(p), true) => p.existential_vars(),
            _ => 0,
        };

        // Phase 2: prune. Groups contribute synthesized necessary-condition
        // edges (def-language reachability per walker); with neither real
        // nor synthesized edges the domains could never shrink below the
        // universe, so construction is skipped entirely. Early-exiting
        // unpinned calls stay lazy (see `SolveOptions::lazy_unpinned`).
        // The adaptive probe's verdict — memoized on the frozen database —
        // routes the prune fills and the seed-sweep prewarms in every
        // pipeline mode; the naive reference path never consults it.
        let want_prune = opts.prune && !(opts.lazy_unpinned && pinned.is_empty());
        let (aux_edges, aux_costs) = if want_prune && !self.groups.is_empty() {
            self.group_prune_edges(db)
        } else {
            (Vec::new(), Vec::new())
        };
        let real_edges = self.free_edges.len();
        let has_prunable = real_edges > 0 || !aux_edges.is_empty();
        let probe =
            (opts.plan || opts.prune) && has_prunable && crate::domains::probe_long_diameter(db);
        let prune_now = want_prune && has_prunable;
        let mut per_source_sweeps = probe;
        // One base stats value per plan; the prune branch patches in the
        // fixpoint outcome (including its per-source verdict — the `move`
        // capture of the probe value only feeds the prune-skipped branch).
        // Strategy routing: which variables extend by leapfrog multiway
        // intersection. `Auto` follows the plan's cycle-rank verdict;
        // forced overrides flip every constrained variable one way. The
        // naive path (no plan) has no component map and always backtracks.
        let (lf_vars, leapfrog_components, tree_components) = match (&plan, opts.strategy) {
            (Some(p), Strategy::Auto) if opts.plan => {
                (p.cyclic_var.clone(), p.cyclic_components, p.tree_components)
            }
            (Some(p), Strategy::Leapfrog) if opts.plan => (
                p.seed_rank.iter().map(|&r| r != usize::MAX).collect(),
                p.cyclic_components + p.tree_components,
                0,
            ),
            (Some(p), _) => (Vec::new(), 0, p.cyclic_components + p.tree_components),
            (None, _) => (Vec::new(), 0, 0),
        };
        let single_step: Vec<Option<Vec<Symbol>>> = if lf_vars.contains(&true) {
            self.free_edges
                .iter()
                .map(|e| single_step_symbols(e.cache.nfa()))
                .collect()
        } else {
            Vec::new()
        };
        let base_stats = move |p: &SolvePlan| PipelineStats {
            var_order: if opts.plan {
                p.var_order.clone()
            } else {
                Vec::new()
            },
            edge_cost: p.edge_cost.clone(),
            group_cost: p.group_cost.clone(),
            rounds: 0,
            per_source_sweeps,
            domain_before: Vec::new(),
            domain_after: Vec::new(),
            eliminated_vars,
            backtrack_steps: 0,
            leapfrog_components,
            tree_components,
            intersection_seeks: 0,
            analysis: None,
            plan_artifact: Some(Arc::new(p.clone())),
        };
        let domains = if prune_now {
            gov.charge_mem(self.node_count * db.node_count().div_ceil(8));
            let mut doms = Domains::full(self.node_count, db.node_count());
            for (&v, &n) in pinned {
                // In range per the check above; collapse to a singleton so
                // the fixpoint starts from the pinned world.
                doms.pin(v, n);
            }
            let before = doms.sizes().to_vec();
            let p = plan.as_ref().expect("prune implies plan construction");
            // Real edges first (plan costs), then the synthesized group
            // walkers; the fixpoint visits all of them cheapest-first and
            // the synthesized tail is dropped again before enumeration.
            let mut costs = p.edge_cost.clone();
            costs.extend(aux_costs);
            self.free_edges.extend(aux_edges);
            // Synthesized group-walker edges run their fills under the same
            // governor as the real ones (they are truncated right after, so
            // no detach is needed for the tail).
            for e in &mut self.free_edges[real_edges..] {
                e.cache.govern(govh.clone());
            }
            let outcome = doms.prune(
                db,
                &mut self.free_edges,
                Some(&costs),
                opts.max_prune_rounds,
                probe,
                gov,
            );
            self.free_edges.truncate(real_edges);
            per_source_sweeps = outcome.per_source_sweeps;
            self.pipeline = Some(PipelineStats {
                rounds: outcome.rounds,
                per_source_sweeps: outcome.per_source_sweeps,
                domain_before: before,
                domain_after: doms.sizes().to_vec(),
                ..base_stats(p)
            });
            if outcome.emptied {
                return false;
            }
            Some(doms)
        } else {
            self.pipeline = plan.as_ref().map(base_stats);
            None
        };

        // Phase 3: enumerate.
        let ctx = EnumCtx {
            plan: if opts.plan { plan.as_ref() } else { None },
            domains: domains.as_ref(),
            per_source_sweeps,
            gov,
            lf_vars,
            single_step,
        };
        let mut is_output = vec![false; self.node_count];
        for v in required {
            is_output[v.index()] = true;
        }
        let unbound_outputs = (0..self.node_count)
            .filter(|&i| is_output[i] && bindings[i].is_none())
            .count();
        // Duplicates are impossible when every constrained variable is an
        // output variable: distinct full assignments then project to
        // distinct tuples, so the hot loops skip the seen-set.
        let dedup_needed = self
            .free_edges
            .iter()
            .flat_map(|e| [e.src, e.dst])
            .chain(
                self.groups
                    .iter()
                    .flat_map(|g| g.srcs.iter().chain(g.dsts.iter()).copied()),
            )
            .any(|v| !is_output[v.index()]);
        let mut st = EnumState {
            bindings,
            edge_done: vec![false; self.free_edges.len()],
            group_done: vec![false; self.groups.len()],
            required: required.to_vec(),
            is_output,
            unbound_outputs,
            project: opts.project,
            existential: false,
            dedup_needed,
            seen: ProjSeen::new(required.len()),
            proj_buf: Vec::with_capacity(required.len()),
            progress: 0,
            backtracks: 0,
            seeks: 0,
        };
        let r = self.recurse(db, &ctx, &mut st, on_solution);
        if let Some(ps) = &mut self.pipeline {
            ps.backtrack_steps = st.backtracks;
            ps.intersection_seeks = st.seeks;
        }
        r
    }

    fn recurse(
        &mut self,
        db: &GraphDb,
        ctx: &EnumCtx<'_>,
        st: &mut EnumState,
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        // Governor checkpoint, one per recursion node. An abort reports
        // "no hit" so every caller treats the subtree as exhausted — an
        // under-approximation (never a spurious witness: the existential
        // sub-search of the projection cutoff must see `false` here).
        if !ctx.gov.checkpoint() {
            return false;
        }
        // 0. Projection cutoff: every output variable is bound, so the
        // projection of everything below is already decided. A previously
        // emitted tuple makes the whole subtree redundant; a fresh one
        // needs exactly one witness of the remaining (existential)
        // variables and constraints — an early-exiting sub-search, after
        // which the prefix backtracks without enumerating further
        // completions.
        if st.project && !st.existential && st.unbound_outputs == 0 {
            if st.dedup_needed && st.seen_contains() {
                // Redundancy pruned in O(1), not wasted search: the parent
                // loops must not book this retraction as a backtrack.
                st.progress += 1;
                return false;
            }
            st.existential = true;
            let witnessed = self.recurse(db, ctx, st, &mut |_| true);
            st.existential = false;
            if witnessed {
                if st.dedup_needed {
                    st.seen_insert();
                    ctx.gov.charge_mem(32); // dedup-table growth (approx.)
                }
                st.progress += 1;
                return on_solution(&st.bindings);
            }
            return false;
        }
        // 1. Check any fully bound free edge.
        for i in 0..self.free_edges.len() {
            if st.edge_done[i] {
                continue;
            }
            let e = &mut self.free_edges[i];
            if let (Some(u), Some(v)) = (st.bindings[e.src.index()], st.bindings[e.dst.index()]) {
                if !e.cache.connects(db, u, v) {
                    return false;
                }
                st.edge_done[i] = true;
                let r = self.recurse(db, ctx, st, on_solution);
                st.edge_done[i] = false;
                return r;
            }
        }
        // 2. Check any fully bound group.
        for i in 0..self.groups.len() {
            if st.group_done[i] {
                continue;
            }
            let all_bound = self.groups[i]
                .srcs
                .iter()
                .chain(self.groups[i].dsts.iter())
                .all(|v| st.bindings[v.index()].is_some());
            if all_bound {
                let starts: Vec<NodeId> = self.groups[i]
                    .srcs
                    .iter()
                    .map(|v| st.bindings[v.index()].unwrap())
                    .collect();
                let ends: Vec<NodeId> = self.groups[i]
                    .dsts
                    .iter()
                    .map(|v| st.bindings[v.index()].unwrap())
                    .collect();
                let ok = !SyncSearch::forward(db, &self.groups[i].spec)
                    .with_governor(ctx.gov)
                    .run(&starts, Some(&ends), Some(&self.stats))
                    .is_empty();
                if !ok {
                    return false;
                }
                st.group_done[i] = true;
                let r = self.recurse(db, ctx, st, on_solution);
                st.group_done[i] = false;
                return r;
            }
        }
        // 3. Extend along a half-bound free edge — the cheapest one when a
        // plan is present, the first in query-text order otherwise (the
        // naive reference path).
        let mut half: Option<usize> = None;
        for (i, (e, done)) in self.free_edges.iter().zip(st.edge_done.iter()).enumerate() {
            if *done {
                continue;
            }
            if st.bindings[e.src.index()].is_some() || st.bindings[e.dst.index()].is_some() {
                match (half, ctx.plan) {
                    (None, _) => half = Some(i),
                    (Some(j), Some(p)) if p.edge_cost[i] < p.edge_cost[j] => half = Some(i),
                    _ => {}
                }
                if ctx.plan.is_none() {
                    break;
                }
            }
        }
        if let Some(i) = half {
            let (src, dst) = (self.free_edges[i].src, self.free_edges[i].dst);
            let (bs, bd) = (st.bindings[src.index()], st.bindings[dst.index()]);
            let var = if bs.is_some() { dst } else { src };
            // Worst-case-optimal routing: when `var` lies in a leapfrog
            // component and two or more pending constraints have already
            // bound their other endpoint on it, intersect all their sorted
            // candidate sets at once instead of extending along one edge
            // and filtering with the rest (which materializes every wedge
            // of a cyclic core). With a single incident bound constraint
            // the intersection degenerates to the plain extension below.
            if ctx.leapfrogs(var) {
                let mut parts: Vec<(usize, bool, NodeId)> = Vec::new();
                for (j, (e, done)) in self.free_edges.iter().zip(st.edge_done.iter()).enumerate() {
                    if *done || e.src == e.dst {
                        continue;
                    }
                    if e.dst == var {
                        if let Some(u) = st.bindings[e.src.index()] {
                            parts.push((j, true, u));
                        }
                    } else if e.src == var {
                        if let Some(u) = st.bindings[e.dst.index()] {
                            parts.push((j, false, u));
                        }
                    }
                }
                if parts.len() >= 2 {
                    return self.leapfrog_extend(db, ctx, st, var, &parts, on_solution);
                }
            }
            // Terminal projection leaf: binding `var` completes the output
            // tuple and nothing else is pending, so every admitted
            // candidate is its own existential witness — the semi-joined
            // candidate set is emitted directly, with no sub-search and no
            // sorting (the answer set is order-free).
            let terminal = st.project
                && !st.existential
                && st.unbound_outputs == 1
                && st.is_output[var.index()]
                && st.group_done.iter().all(|d| *d)
                && st.edge_done.iter().enumerate().all(|(j, d)| j == i || *d);
            if terminal {
                let from = bs.or(bd).unwrap();
                let set = if bs.is_some() {
                    self.free_edges[i].cache.targets(db, from)
                } else {
                    self.free_edges[i].cache.sources(db, from)
                };
                // Small-arity tuples with `var` at a single position pack
                // against a hoisted key template: the per-candidate dedup
                // probe is one shift-or plus a hash insert, and duplicate
                // candidates never even bind.
                let template = (st.dedup_needed
                    && matches!(st.seen, ProjSeen::Small(_))
                    && st.required.iter().filter(|v| **v == var).count() == 1)
                    .then(|| {
                        let pos = st.required.iter().position(|v| *v == var).unwrap();
                        let shift = 32 * (st.required.len() - 1 - pos) as u32;
                        let mut key = 1u128;
                        for v in &st.required {
                            let part = if *v == var {
                                0
                            } else {
                                st.bindings[v.index()].expect("output bound").0 as u128
                            };
                            key = (key << 32) | part;
                        }
                        (key, shift)
                    });
                for &c in set.iter() {
                    if ctx.gov.is_aborted() {
                        return false; // drain: emitted tuples stand
                    }
                    if !ctx.admits(var, c) {
                        continue;
                    }
                    let fresh = match (&template, st.dedup_needed) {
                        (Some((key, shift)), _) => {
                            let ProjSeen::Small(s) = &mut st.seen else {
                                unreachable!("template implies small keys")
                            };
                            s.insert(key | ((c.0 as u128) << shift))
                        }
                        (None, true) => {
                            st.bind(var, c);
                            let fresh = st.seen_insert();
                            st.unbind(var);
                            fresh
                        }
                        (None, false) => true,
                    };
                    if fresh {
                        if st.dedup_needed {
                            ctx.gov.charge_mem(32); // dedup-table growth
                        }
                        st.bind(var, c);
                        st.progress += 1;
                        let stop = on_solution(&st.bindings);
                        st.unbind(var);
                        if stop {
                            return true;
                        }
                    } else {
                        st.progress += 1; // duplicate pruned, not wasted
                    }
                }
                return false;
            }
            st.edge_done[i] = true;
            // Per-call sort, not the memoized sorted rows: binary extension
            // visits most sources once, so the row memo's hash-and-share
            // overhead never amortizes here (the leapfrog intersection, with
            // its repeated per-(source, atom) seeks, is where it pays).
            let candidates: Vec<NodeId> = if let Some(u) = bs {
                self.free_edges[i].targets_sorted(db, u, true)
            } else {
                self.free_edges[i].targets_sorted(db, bd.unwrap(), false)
            };
            for c in candidates {
                if ctx.gov.is_aborted() {
                    break; // drain the candidate sweep
                }
                if !ctx.admits(var, c) {
                    continue;
                }
                st.bind(var, c);
                let before = st.progress;
                if self.recurse(db, ctx, st, on_solution) {
                    st.unbind(var);
                    st.edge_done[i] = false;
                    return true;
                }
                if st.progress == before {
                    st.backtracks += 1;
                }
                st.unbind(var);
            }
            st.edge_done[i] = false;
            return false;
        }
        // 4. Extend along a group with one side fully bound.
        for i in 0..self.groups.len() {
            if st.group_done[i] {
                continue;
            }
            let srcs_bound = self.groups[i]
                .srcs
                .iter()
                .all(|v| st.bindings[v.index()].is_some());
            let dsts_bound = self.groups[i]
                .dsts
                .iter()
                .all(|v| st.bindings[v.index()].is_some());
            if srcs_bound || dsts_bound {
                st.group_done[i] = true;
                let (open_vars, tuples) = if srcs_bound {
                    let starts: Vec<NodeId> = self.groups[i]
                        .srcs
                        .iter()
                        .map(|v| st.bindings[v.index()].unwrap())
                        .collect();
                    let tuples = sync_targets_governed(
                        db,
                        &self.groups[i].spec,
                        &starts,
                        Some(&self.stats),
                        ctx.gov,
                    );
                    (self.groups[i].dsts.clone(), tuples)
                } else {
                    let ends: Vec<NodeId> = self.groups[i]
                        .dsts
                        .iter()
                        .map(|v| st.bindings[v.index()].unwrap())
                        .collect();
                    // Walk the database *backwards* under the reversed spec
                    // to enumerate source tuples; the walk borrows the
                    // cached reversed spec.
                    self.groups[i].ensure_reversed();
                    let tuples = {
                        let rev = self.groups[i].reversed.as_ref().expect("just ensured");
                        sync_sources_governed(db, rev, &ends, Some(&self.stats), ctx.gov)
                    };
                    (self.groups[i].srcs.clone(), tuples)
                };
                'tuple: for tup in tuples {
                    if ctx.gov.is_aborted() {
                        break;
                    }
                    // Bind open vars consistently (a variable may repeat and
                    // may already be bound), respecting pruned domains.
                    let mut newly: Vec<NodeVar> = Vec::new();
                    for (var, node) in open_vars.iter().zip(tup.iter()) {
                        match st.bindings[var.index()] {
                            Some(b) if b != *node => {
                                for v in newly.drain(..) {
                                    st.unbind(v);
                                }
                                continue 'tuple;
                            }
                            Some(_) => {}
                            None => {
                                if !ctx.admits(*var, *node) {
                                    for v in newly.drain(..) {
                                        st.unbind(v);
                                    }
                                    continue 'tuple;
                                }
                                st.bind(*var, *node);
                                newly.push(*var);
                            }
                        }
                    }
                    let before = st.progress;
                    let hit = self.recurse(db, ctx, st, on_solution);
                    if !hit && !newly.is_empty() && st.progress == before {
                        st.backtracks += 1;
                    }
                    for v in newly {
                        st.unbind(v);
                    }
                    if hit {
                        st.group_done[i] = false;
                        return true;
                    }
                }
                st.group_done[i] = false;
                return false;
            }
        }
        // 5. Seed: bind some variable occurring in a pending constraint —
        // the minimum-rank unbound variable of the plan's cheapest-first
        // order (one pass over the pending constraints via `seed_rank`), or
        // (naive) the first source variable of a pending constraint.
        let seed_var = if let Some(p) = ctx.plan {
            let mut best: Option<(usize, NodeVar)> = None;
            let consider =
                |v: NodeVar, bindings: &[Option<NodeId>], best: &mut Option<(usize, NodeVar)>| {
                    if bindings[v.index()].is_none() {
                        let rank = p.seed_rank[v.index()];
                        if best.is_none_or(|(r, _)| rank < r) {
                            *best = Some((rank, v));
                        }
                    }
                };
            for (e, done) in self.free_edges.iter().zip(st.edge_done.iter()) {
                if !*done {
                    consider(e.src, &st.bindings, &mut best);
                    consider(e.dst, &st.bindings, &mut best);
                }
            }
            for (g, done) in self.groups.iter().zip(st.group_done.iter()) {
                if !*done {
                    for &v in g.srcs.iter().chain(g.dsts.iter()) {
                        consider(v, &st.bindings, &mut best);
                    }
                }
            }
            best.map(|(_, v)| v)
        } else {
            self.free_edges
                .iter()
                .zip(st.edge_done.iter())
                .filter(|(_, d)| !**d)
                .map(|(e, _)| e.src)
                .chain(
                    self.groups
                        .iter()
                        .zip(st.group_done.iter())
                        .filter(|(_, d)| !**d)
                        .flat_map(|(g, _)| g.srcs.iter().copied()),
                )
                .find(|v| st.bindings[v.index()].is_none())
        };
        if let Some(var) = seed_var {
            // Sweep the candidate nodes (the pruned domain when phase 2
            // ran, all database nodes otherwise) in stripe-sized chunks,
            // prewarming the cache of every pending free edge touching
            // `var` with one batched wavefront per chunk: the
            // `connects`/`targets` calls the recursion makes after binding
            // `var` are then memo hits. The first chunk stays per-source —
            // a boolean/check call that succeeds among the first candidates
            // (the common early exit) then never pays for a wavefront, and
            // a sweep that gets past it batches everything from the second
            // chunk on. On long-diameter graphs the prune probe's verdict
            // carries over and the prewarm is skipped entirely (per-source
            // sweeps happen lazily inside the recursion). Only the current
            // chunk is ever materialized.
            let mut candidates: Box<dyn Iterator<Item = NodeId> + '_> = match ctx.domains {
                Some(d) => Box::new(d.iter(var)),
                None => Box::new(db.nodes()),
            };
            let mut chunk: Vec<NodeId> = Vec::with_capacity(SEED_BATCH);
            let mut chunk_idx = 0usize;
            loop {
                chunk.clear();
                chunk.extend(candidates.by_ref().take(SEED_BATCH));
                if chunk.is_empty() {
                    break;
                }
                if chunk_idx > 0 && !ctx.per_source_sweeps {
                    for (i, e) in self.free_edges.iter_mut().enumerate() {
                        if st.edge_done[i] {
                            continue;
                        }
                        if e.src == var {
                            e.cache.fill_targets(db, &chunk);
                        }
                        if e.dst == var {
                            e.cache.fill_sources(db, &chunk);
                        }
                    }
                }
                for &node in &chunk {
                    if ctx.gov.is_aborted() {
                        return false;
                    }
                    st.bind(var, node);
                    let before = st.progress;
                    if self.recurse(db, ctx, st, on_solution) {
                        st.unbind(var);
                        return true;
                    }
                    if st.progress == before {
                        st.backtracks += 1;
                    }
                    st.unbind(var);
                }
                chunk_idx += 1;
            }
            return false;
        }
        // All constraints satisfied: bind required-but-unbound variables.
        let unbound_required = st
            .required
            .iter()
            .find(|v| st.bindings[v.index()].is_none())
            .copied();
        if let Some(var) = unbound_required {
            for node in db.nodes() {
                if ctx.gov.is_aborted() {
                    return false;
                }
                st.bind(var, node);
                let before = st.progress;
                if self.recurse(db, ctx, st, on_solution) {
                    st.unbind(var);
                    return true;
                }
                if st.progress == before {
                    st.backtracks += 1;
                }
                st.unbind(var);
            }
            return false;
        }
        st.progress += 1;
        on_solution(&st.bindings)
    }

    /// Extends `var` by leapfrog multiway intersection. Each `parts` entry
    /// `(edge, forward, from)` is a pending constraint whose other endpoint
    /// is bound to `from`; it contributes the sorted set of `var`-candidates
    /// it supports — a direct CSR run union for single-step atoms, a
    /// materialized sorted reach row otherwise — and the pruned domain
    /// joins as one more set. The sweep seeks every set to the running
    /// maximum (binary-search `seek_ge`, counted in
    /// [`PipelineStats::intersection_seeks`]); a value all `k` sets agree
    /// on is a candidate every incident constraint supports, so binding it
    /// discharges all participating edges at once — they are marked done
    /// for the subtree and restored on the way out. Early-exit, progress
    /// accounting and governor drains mirror the binary extension path.
    fn leapfrog_extend(
        &mut self,
        db: &GraphDb,
        ctx: &EnumCtx<'_>,
        st: &mut EnumState,
        var: NodeVar,
        parts: &[(usize, bool, NodeId)],
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        let mut sets: Vec<SortedSet<'_>> = Vec::with_capacity(parts.len() + 1);
        for &(j, forward, from) in parts {
            match ctx.single_step.get(j).and_then(|o| o.as_ref()) {
                Some(syms) => {
                    let runs = syms
                        .iter()
                        .map(|&a| {
                            let run = if forward {
                                db.successors_with(from, a)
                            } else {
                                db.predecessors_with(from, a)
                            };
                            (a, run)
                        })
                        .collect();
                    sets.push(SortedSet::Runs(runs));
                }
                None => {
                    let row = if forward {
                        self.free_edges[j].cache.targets_sorted(db, from)
                    } else {
                        self.free_edges[j].cache.sources_sorted(db, from)
                    };
                    sets.push(SortedSet::Row(row, 0));
                }
            }
        }
        if let Some(d) = ctx.domains {
            sets.push(SortedSet::Bits(d.bits(var)));
        }
        for &(j, ..) in parts {
            st.edge_done[j] = true;
        }
        let k = sets.len();
        let mut hi = NodeId(0);
        let mut matched = 0usize;
        let mut idx = 0usize;
        let mut hit = false;
        loop {
            // Seeks are cheap but unbounded in count: checkpoint one per
            // stripe so governed runs drain mid-intersection too.
            if st.seeks.is_multiple_of(64) && !ctx.gov.checkpoint() {
                break;
            }
            st.seeks += 1;
            let Some(n) = sets[idx].seek_ge(hi) else {
                break;
            };
            if n == hi {
                matched += 1;
            } else {
                hi = n;
                matched = 1;
            }
            idx = (idx + 1) % k;
            if matched < k {
                continue;
            }
            // `hi` is in every candidate set (and the pruned domain).
            if ctx.gov.is_aborted() {
                break; // drain: emitted tuples stand
            }
            st.bind(var, hi);
            let before = st.progress;
            let stop = self.recurse(db, ctx, st, on_solution);
            if !stop && st.progress == before {
                st.backtracks += 1;
            }
            st.unbind(var);
            if stop {
                hit = true;
                break;
            }
            matched = 0;
            let Some(next) = hi.0.checked_add(1) else {
                break;
            };
            hi = NodeId(next);
        }
        for &(j, ..) in parts {
            st.edge_done[j] = false;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_automata::{parse_regex, Nfa};
    use cxrpq_graph::Alphabet;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    fn db_cycle(word: &str) -> (GraphDb, Vec<NodeId>) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word(word).unwrap();
        let nodes: Vec<NodeId> = (0..w.len()).map(|_| db.add_node()).collect();
        for (i, &s) in w.iter().enumerate() {
            db.add_edge(nodes[i], s, nodes[(i + 1) % w.len()]);
        }
        (db.freeze(), nodes)
    }

    fn nfa(db: &GraphDb, s: &str) -> Nfa {
        let mut a = db.alphabet().clone();
        Nfa::from_regex(&parse_regex(s, &mut a).unwrap())
    }

    #[test]
    fn single_edge_boolean() {
        let (db, _) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "abca")),
        });
        let mut found = false;
        p.solve(&db, &HashMap::new(), &[], &mut |_| {
            found = true;
            true
        });
        assert!(found);
        // No path labelled "aa" on the cycle.
        let mut p2 = Problem::new(2);
        p2.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "aa")),
        });
        let mut found2 = false;
        p2.solve(&db, &HashMap::new(), &[], &mut |_| {
            found2 = true;
            true
        });
        assert!(!found2);
    }

    #[test]
    fn conjunction_shares_nodes() {
        // x -ab-> y and y -ca-> x on the cycle abcabc: y = x+2, and from y
        // reading "ca" lands on y+2 = x+4 ≠ x… on a 6-cycle with word
        // abcabc: positions 0..5; x=0: ab leads to 2; from 2, "ca" = c,a →
        // 2:c->3, 3:a->4 ≠ 0. x=3: ab: 3 is 'a'? word abcabc: edge i labelled
        // w[i]. x=3: a at 3, b at 4 → y=5; from 5: c at 5, a at 0 → 1 ≠ 3.
        // So unsatisfiable; but x -ab-> y, y -cabc-> x is satisfiable (x=0).
        let (db, nodes) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "ab")),
        });
        p.free_edges.push(FreeEdge {
            src: NodeVar(1),
            dst: NodeVar(0),
            cache: ReachCache::new(nfa(&db, "ca")),
        });
        let mut found = false;
        p.solve(&db, &HashMap::new(), &[], &mut |_| {
            found = true;
            true
        });
        assert!(!found);

        let mut p2 = Problem::new(2);
        p2.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "ab")),
        });
        p2.free_edges.push(FreeEdge {
            src: NodeVar(1),
            dst: NodeVar(0),
            cache: ReachCache::new(nfa(&db, "cabc")),
        });
        let mut sol = None;
        p2.solve(&db, &HashMap::new(), &[], &mut |b| {
            sol = Some((b[0].unwrap(), b[1].unwrap()));
            true
        });
        assert_eq!(sol, Some((nodes[0], nodes[2])));
    }

    #[test]
    fn pinned_bindings_check() {
        let (db, nodes) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "abc")),
        });
        let pinned: HashMap<NodeVar, NodeId> =
            [(NodeVar(0), nodes[0]), (NodeVar(1), nodes[3])].into();
        let mut found = false;
        p.solve(&db, &pinned, &[], &mut |_| {
            found = true;
            true
        });
        assert!(found);
        let pinned2: HashMap<NodeVar, NodeId> =
            [(NodeVar(0), nodes[0]), (NodeVar(1), nodes[4])].into();
        let mut found2 = false;
        p.solve(&db, &pinned2, &[], &mut |_| {
            found2 = true;
            true
        });
        assert!(!found2);
    }

    #[test]
    fn pinned_out_of_range_yields_no_solutions() {
        // Regression: a pinned NodeId beyond the database used to index the
        // product visited-set out of bounds; now it simply has no solutions
        // (under both the pipeline and the naive reference path).
        let (db, nodes) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "abc")),
        });
        let bad: HashMap<NodeVar, NodeId> =
            [(NodeVar(0), nodes[0]), (NodeVar(1), NodeId(1_000))].into();
        for opts in [SolveOptions::default(), SolveOptions::naive()] {
            let mut found = false;
            let hit = p.solve_with(&db, &bad, &[], &opts, &mut |_| {
                found = true;
                true
            });
            assert!(!hit && !found, "out-of-range pin must yield no solutions");
        }
    }

    #[test]
    fn group_constraint_in_pattern() {
        // Pattern: x -w-> y, x -w-> z with the same word w ∈ a(b|c): on a
        // graph where only one branch exists, y = z is forced.
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let a = db.alphabet().sym("a");
        let b = db.alphabet().sym("b");
        let c = db.alphabet().sym("c");
        let s = db.add_node();
        let m = db.add_node();
        let t1 = db.add_node();
        let t2 = db.add_node();
        db.add_edge(s, a, m);
        db.add_edge(m, b, t1);
        db.add_edge(m, c, t2);
        let db = db.freeze();
        let mut p = Problem::new(3); // x=0, y=1, z=2
        let def = nfa(&db, "a(b|c)");
        p.groups.push(Group::new(
            vec![NodeVar(0), NodeVar(0)],
            vec![NodeVar(1), NodeVar(2)],
            SyncSpec::equality_group(Some(def), 2),
        ));
        let mut sols = Vec::new();
        p.solve(&db, &HashMap::new(), &[], &mut |bnd| {
            sols.push((bnd[0].unwrap(), bnd[1].unwrap(), bnd[2].unwrap()));
            false
        });
        // Solutions: (s, t1, t1) and (s, t2, t2) — never (s, t1, t2).
        assert!(sols.contains(&(s, t1, t1)));
        assert!(sols.contains(&(s, t2, t2)));
        assert!(!sols.contains(&(s, t1, t2)));
        assert!(!sols.contains(&(s, t2, t1)));
    }

    #[test]
    fn group_solved_backwards_from_pinned_dsts() {
        // Regression: when only the group's *destinations* are pinned, the
        // solver must enumerate source tuples by a backward walk (an earlier
        // version ran the reversed spec forward and produced false
        // negatives).
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word("abc").unwrap();
        let s1 = db.add_node();
        let t1 = db.add_node();
        let s2 = db.add_node();
        let t2 = db.add_node();
        db.add_word_path(s1, &w, t1);
        db.add_word_path(s2, &w, t2);
        // A third path labelled acb, used by the mismatch check below (built
        // up front so the database can be frozen once).
        let w2 = db.alphabet().parse_word("acb").unwrap();
        let s3 = db.add_node();
        let t3 = db.add_node();
        db.add_word_path(s3, &w2, t3);
        let db = db.freeze();
        let mut p = Problem::new(4); // x=0, y=1, u=2, v=3
        p.groups.push(Group::new(
            vec![NodeVar(0), NodeVar(2)],
            vec![NodeVar(1), NodeVar(3)],
            SyncSpec::equality_group(None, 2),
        ));
        // Pin the two destinations; the sources must be found backwards.
        let pinned: HashMap<NodeVar, NodeId> = [(NodeVar(1), t1), (NodeVar(3), t2)].into();
        let mut sols = Vec::new();
        p.solve(&db, &pinned, &[], &mut |b| {
            sols.push((b[0].unwrap(), b[2].unwrap()));
            false
        });
        assert!(sols.contains(&(s1, s2)), "missing backward-derived sources");
        // Distinct-word destinations are rejected.
        let pinned2: HashMap<NodeVar, NodeId> = [(NodeVar(1), t1), (NodeVar(3), t3)].into();
        let mut sols2 = Vec::new();
        p.solve(&db, &pinned2, &[], &mut |b| {
            sols2.push((b[0].unwrap(), b[2].unwrap()));
            false
        });
        // Short equal suffixes (e.g. ε at the sinks) are fine, but the full
        // chains read abc vs acb and must not pair up.
        assert!(!sols2.contains(&(s1, s3)), "abc cannot equal acb");
    }

    #[test]
    fn required_vars_enumerated() {
        let (db, _) = db_cycle("ab");
        let mut p = Problem::new(1);
        let mut count = 0;
        p.solve(&db, &HashMap::new(), &[NodeVar(0)], &mut |_| {
            count += 1;
            false
        });
        assert_eq!(count, 2); // both cycle nodes
    }

    #[test]
    fn projection_emits_each_tuple_once_with_one_witness() {
        // x -a-> {m1, m2} -b-> t: two full morphisms that project onto the
        // same (x, t). Pushdown emits the tuple once (the middle variable
        // is deduplicated at the enumerator); the unprojected reference
        // reports both morphisms.
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut b = GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let bb = b.alphabet().sym("b");
        let s = b.add_node();
        let m1 = b.add_node();
        let m2 = b.add_node();
        let t = b.add_node();
        b.add_edge(s, a, m1);
        b.add_edge(s, a, m2);
        b.add_edge(m1, bb, t);
        b.add_edge(m2, bb, t);
        let db = b.freeze();
        let build = || {
            let mut p = Problem::new(3);
            p.free_edges.push(FreeEdge {
                src: NodeVar(0),
                dst: NodeVar(1),
                cache: ReachCache::new(nfa(&db, "a")),
            });
            p.free_edges.push(FreeEdge {
                src: NodeVar(1),
                dst: NodeVar(2),
                cache: ReachCache::new(nfa(&db, "b")),
            });
            p
        };
        let run = |opts: SolveOptions| {
            let mut p = build();
            let mut calls = 0usize;
            let mut tuples: Vec<(NodeId, NodeId)> = Vec::new();
            p.solve_with(
                &db,
                &HashMap::new(),
                &[NodeVar(0), NodeVar(2)],
                &opts,
                &mut |b| {
                    calls += 1;
                    tuples.push((b[0].unwrap(), b[2].unwrap()));
                    false
                },
            );
            tuples.sort();
            tuples.dedup();
            (calls, tuples, p.pipeline)
        };
        let (calls_proj, tuples_proj, stats) = run(SolveOptions::pipeline().projected());
        let (calls_full, tuples_full, _) = run(SolveOptions::naive());
        assert_eq!(tuples_proj, tuples_full);
        assert_eq!(tuples_proj, vec![(s, t)]);
        assert_eq!(calls_proj, 1, "pushdown must emit the projection once");
        assert_eq!(calls_full, 2, "the reference enumerates both morphisms");
        // Productive candidates (subtrees that emitted and continued) are
        // not backtracks; this enumeration wastes no search at all.
        assert_eq!(stats.expect("stats recorded").backtrack_steps, 0);
    }

    #[test]
    fn boolean_fast_path_is_backtrack_free_when_arc_consistent() {
        // Chain x -a-> y -b-> z on the path a·b: satisfiable, and the prune
        // phase reaches arc consistency, so the Boolean call (empty output
        // under projection = every variable existential) takes the first
        // supported candidate at every level: zero backtracking steps.
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut b = GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let bb = b.alphabet().sym("b");
        let n0 = b.add_node();
        let n1 = b.add_node();
        let n2 = b.add_node();
        b.add_edge(n0, a, n1);
        b.add_edge(n1, bb, n2);
        let db = b.freeze();
        let mut p = Problem::new(3);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "a")),
        });
        p.free_edges.push(FreeEdge {
            src: NodeVar(1),
            dst: NodeVar(2),
            cache: ReachCache::new(nfa(&db, "b")),
        });
        let mut found = false;
        let hit = p.solve_with(
            &db,
            &HashMap::new(),
            &[],
            &SolveOptions::pipeline().projected(),
            &mut |_| {
                found = true;
                true
            },
        );
        assert!(hit && found);
        let stats = p.pipeline.expect("pipeline stats recorded");
        assert_eq!(
            stats.backtrack_steps, 0,
            "arc-consistent satisfiable Boolean must not backtrack"
        );
        // Every variable of the order is existential for a Boolean call.
        assert_eq!(stats.eliminated_vars, stats.var_order.len());
        assert_eq!(stats.eliminated_vars, 3);
    }

    #[test]
    fn group_def_language_semi_join_prunes_domains() {
        // A group-only problem used to skip pruning entirely; with the
        // def-language necessary condition, every member's endpoints
        // collapse to the ab-path before the synchronized search runs.
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut b = GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let bb = b.alphabet().sym("b");
        let c = b.alphabet().sym("c");
        let s = b.add_node();
        let m = b.add_node();
        let t = b.add_node();
        b.add_edge(s, a, m);
        b.add_edge(m, bb, t);
        // Noise the def language rejects.
        let x = b.add_node();
        let y = b.add_node();
        b.add_edge(x, c, y);
        let db = b.freeze();
        let mut p = Problem::new(4);
        let def = nfa(&db, "ab");
        p.groups.push(Group::new(
            vec![NodeVar(0), NodeVar(2)],
            vec![NodeVar(1), NodeVar(3)],
            SyncSpec::equality_group(Some(def), 2),
        ));
        let mut sols = Vec::new();
        p.solve_with(
            &db,
            &HashMap::new(),
            &[],
            &SolveOptions::pipeline(),
            &mut |b| {
                sols.push((b[0].unwrap(), b[1].unwrap(), b[2].unwrap(), b[3].unwrap()));
                false
            },
        );
        assert_eq!(sols, vec![(s, t, s, t)]);
        let stats = p.pipeline.expect("group semi-joins record stats");
        assert!(stats.rounds >= 1, "group walkers must drive prune rounds");
        // 4 variables × 5 nodes before; singletons after.
        assert_eq!(stats.total_before(), 20);
        assert_eq!(stats.total_after(), 4);
    }

    #[test]
    fn equality_group_borrows_most_selective_member_for_pruning() {
        // Equality relation with members [Σ⁺-like, "ab"]: the first member
        // is unselective, but the shared word must also match the second,
        // so *both* walkers prune under "ab" — a group-only problem still
        // collapses its domains.
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut b = GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let bb = b.alphabet().sym("b");
        let s = b.add_node();
        let m = b.add_node();
        let t = b.add_node();
        b.add_edge(s, a, m);
        b.add_edge(m, bb, t);
        b.add_edge(t, a, s); // extra arcs so (a|b)+ stays unselective
        let db = b.freeze();
        let mut p = Problem::new(4);
        p.groups.push(Group::new(
            vec![NodeVar(0), NodeVar(2)],
            vec![NodeVar(1), NodeVar(3)],
            SyncSpec {
                nfas: vec![nfa(&db, "(a|b)+"), nfa(&db, "ab")],
                relation: crate::relation::RegularRelation::equality(2),
            },
        ));
        let mut sols = Vec::new();
        p.solve_with(
            &db,
            &HashMap::new(),
            &[],
            &SolveOptions::pipeline(),
            &mut |b| {
                sols.push((b[0].unwrap(), b[1].unwrap(), b[2].unwrap(), b[3].unwrap()));
                false
            },
        );
        assert_eq!(sols, vec![(s, t, s, t)]);
        let stats = p.pipeline.expect("selective member drives pruning");
        assert!(stats.rounds >= 1);
        // 4 variables × 3 nodes before; ab-path endpoints only after.
        assert_eq!(stats.total_before(), 12);
        assert_eq!(stats.total_after(), 4);
    }

    #[test]
    fn pipeline_and_naive_agree_and_stats_report() {
        let (db, _) = db_cycle("abcabc");
        let build = |db: &GraphDb| {
            let mut p = Problem::new(3);
            p.free_edges.push(FreeEdge {
                src: NodeVar(0),
                dst: NodeVar(1),
                cache: ReachCache::new(nfa(db, "ab")),
            });
            p.free_edges.push(FreeEdge {
                src: NodeVar(1),
                dst: NodeVar(2),
                cache: ReachCache::new(nfa(db, "ca")),
            });
            p
        };
        let collect = |opts: &SolveOptions| {
            let mut p = build(&db);
            let mut sols = Vec::new();
            p.solve_with(&db, &HashMap::new(), &[], opts, &mut |b| {
                sols.push(b.to_vec());
                false
            });
            sols.sort();
            (sols, p.pipeline)
        };
        let (fast, stats) = collect(&SolveOptions::pipeline());
        let (slow, naive_stats) = collect(&SolveOptions::naive());
        assert_eq!(fast, slow);
        let stats = stats.expect("pipeline records stats");
        assert!(naive_stats.is_none());
        assert_eq!(stats.var_order.len(), 3);
        assert!(stats.rounds >= 1);
        assert!(stats.total_after() <= stats.total_before());
    }

    #[test]
    fn statically_unsat_short_circuits_with_zero_search() {
        let (db, _) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "ab")),
        });
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "!")),
        });
        let mut found = false;
        let hit = p.solve(&db, &HashMap::new(), &[], &mut |_| {
            found = true;
            true
        });
        assert!(!hit && !found);
        // The refutation is purely static: no reach or sync search ran.
        assert_eq!(p.stats.states(), 0);
        for e in &p.free_edges {
            assert_eq!(e.cache.stats.states(), 0);
        }
        let ps = p.pipeline.as_ref().unwrap();
        assert_eq!(ps.backtrack_steps, 0);
        assert!(ps.var_order.is_empty());
        let report = ps.analysis.as_ref().unwrap();
        assert!(report.stats.unsat);
        assert!(report.diagnostics.has(crate::diagnostics::Lint::EmptyAtom));
    }

    #[test]
    fn footprint_miss_short_circuits_with_zero_search() {
        // Alphabet is "abc" but the graph only has a/b arcs: any atom that
        // *must* read a `c` is refuted without searching.
        let (db, _) = db_cycle("abab");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "a*cb*")),
        });
        let hit = p.solve(&db, &HashMap::new(), &[], &mut |_| true);
        assert!(!hit);
        assert_eq!(p.stats.states(), 0);
        assert_eq!(p.free_edges[0].cache.stats.states(), 0);
        let ps = p.pipeline.as_ref().unwrap();
        assert_eq!(ps.backtrack_steps, 0);
        let report = ps.analysis.as_ref().unwrap();
        assert!(report.stats.unsat);
        assert!(report
            .diagnostics
            .has(crate::diagnostics::Lint::FootprintMiss));
    }

    #[test]
    fn epsilon_atom_merges_vars_and_restores_problem() {
        let (db, nodes) = db_cycle("abcabc");
        let mut p = Problem::new(3);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "ab")),
        });
        p.free_edges.push(FreeEdge {
            src: NodeVar(1),
            dst: NodeVar(2),
            cache: ReachCache::new(nfa(&db, "_")),
        });
        let required = [NodeVar(0), NodeVar(1), NodeVar(2)];
        let mut sols: Vec<(NodeId, NodeId, NodeId)> = Vec::new();
        p.solve(&db, &HashMap::new(), &required, &mut |b| {
            sols.push((b[0].unwrap(), b[1].unwrap(), b[2].unwrap()));
            false
        });
        assert!(!sols.is_empty());
        // The merged-away variable is bound to its representative's node.
        for &(_, y, z) in &sols {
            assert_eq!(y, z);
        }
        assert!(sols.contains(&(nodes[0], nodes[2], nodes[2])));
        let report = p.pipeline.as_ref().unwrap().analysis.as_ref().unwrap();
        assert_eq!(report.stats.vars_merged, 1);
        assert_eq!(report.stats.atoms_dropped, 1);
        // The ε atom was parked during the rewrite and restored afterwards,
        // endpoints intact, so the problem can be solved again.
        assert_eq!(p.free_edges.len(), 2);
        assert_eq!(p.free_edges[1].src, NodeVar(1));
        assert_eq!(p.free_edges[1].dst, NodeVar(2));
        let mut again: Vec<(NodeId, NodeId, NodeId)> = Vec::new();
        p.solve(&db, &HashMap::new(), &required, &mut |b| {
            again.push((b[0].unwrap(), b[1].unwrap(), b[2].unwrap()));
            false
        });
        assert_eq!(sols, again);
    }

    #[test]
    fn conflicting_pins_on_unified_vars_are_unsat() {
        let (db, nodes) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "_")),
        });
        let mut pins = HashMap::new();
        pins.insert(NodeVar(0), nodes[0]);
        pins.insert(NodeVar(1), nodes[1]);
        let hit = p.solve(&db, &pins, &[], &mut |_| true);
        assert!(!hit);
        let report = p.pipeline.as_ref().unwrap().analysis.as_ref().unwrap();
        assert!(report.stats.unsat);
        // Agreeing pins on the unified pair still match.
        pins.insert(NodeVar(1), nodes[0]);
        let hit2 = p.solve(&db, &pins, &[], &mut |_| true);
        assert!(hit2);
    }

    #[test]
    fn subsumed_atom_dropped_without_changing_answers() {
        let (db, _) = db_cycle("abcabc");
        let build = || {
            let mut p = Problem::new(2);
            // L(ab) ⊆ L(a(b|c)): the wider atom is redundant and dropped.
            p.free_edges.push(FreeEdge {
                src: NodeVar(0),
                dst: NodeVar(1),
                cache: ReachCache::new(nfa(&db, "ab")),
            });
            p.free_edges.push(FreeEdge {
                src: NodeVar(0),
                dst: NodeVar(1),
                cache: ReachCache::new(nfa(&db, "a(b|c)")),
            });
            p
        };
        let required = [NodeVar(0), NodeVar(1)];
        let mut analyzed: Vec<(NodeId, NodeId)> = Vec::new();
        let mut p = build();
        p.solve(&db, &HashMap::new(), &required, &mut |b| {
            analyzed.push((b[0].unwrap(), b[1].unwrap()));
            false
        });
        let report = p.pipeline.as_ref().unwrap().analysis.as_ref().unwrap();
        assert_eq!(report.stats.atoms_dropped, 1);
        assert!(report
            .diagnostics
            .has(crate::diagnostics::Lint::SubsumedAtom));
        assert_eq!(p.free_edges.len(), 2, "dropped atom restored after solve");
        let mut plain: Vec<(NodeId, NodeId)> = Vec::new();
        let mut p2 = build();
        p2.solve_with(
            &db,
            &HashMap::new(),
            &required,
            &SolveOptions::default().unanalyzed(),
            &mut |b| {
                plain.push((b[0].unwrap(), b[1].unwrap()));
                false
            },
        );
        analyzed.sort_unstable();
        plain.sort_unstable();
        assert_eq!(analyzed, plain);
    }
}
