//! A three-phase pipeline solver for conjunctive path constraints.
//!
//! All evaluators in this crate reduce to the same search problem: find a
//! matching morphism `h : V_q → V_D` such that
//!
//! - every *free edge* `(x, M, y)` is witnessed by a path `h(x) →* h(y)`
//!   labelled by a word of `L(M)` (single-walker product reachability), and
//! - every *group* `((x₁…x_s), (y₁…y_s), spec)` is witnessed by a tuple of
//!   paths `h(xᵢ) →* h(yᵢ)` whose labels jointly satisfy the group's
//!   [`SyncSpec`] (synchronized product search).
//!
//! CRPQs use only free edges; simple CXRPQs (Lemma 3) add equality groups
//! per string variable; ECRPQs add arbitrary regular-relation groups.
//!
//! [`Problem::solve`] runs three phases (see [`SolveOptions`] for the
//! knobs; [`SolveOptions::naive`] restores the historical single-pass
//! backtracker as a differential-testing reference):
//!
//! 1. **Plan** ([`crate::plan`]) — build the constraint graph over node
//!    variables, estimate per-constraint selectivity from CSR label
//!    statistics, emit a connected cheapest-first variable order.
//! 2. **Prune** ([`crate::domains`]) — semi-join reduction of per-variable
//!    candidate domains to a (capped) fixpoint, with batched
//!    domain-restricted wavefront fills and an adaptive per-source fallback
//!    on long-diameter graphs. Pinned bindings collapse their domains to
//!    singletons first; an emptied domain ends the search without
//!    enumeration.
//! 3. **Enumerate** — backtrack over the pruned domains in plan order,
//!    checking fully bound constraints eagerly and extending along the
//!    cheapest half-bound constraint; early-exit semantics (`on_solution`
//!    returning `true`) are unchanged.

use crate::domains::Domains;
use crate::pattern::NodeVar;
use crate::plan::SolvePlan;
use crate::reach::{ReachCache, ReachStats};
use crate::sync::{sync_sources, sync_targets, SyncSearch, SyncSpec};
use cxrpq_graph::{GraphDb, NodeId};
use std::collections::HashMap;

/// A single-walker constraint `(src) -L(M)-> (dst)`.
pub struct FreeEdge {
    /// Source node variable.
    pub src: NodeVar,
    /// Target node variable.
    pub dst: NodeVar,
    /// Reachability cache for the edge automaton.
    pub cache: ReachCache,
}

/// A synchronized multi-walker constraint.
pub struct Group {
    /// Source node variable per walker.
    pub srcs: Vec<NodeVar>,
    /// Target node variable per walker.
    pub dsts: Vec<NodeVar>,
    /// The group specification (per-walker NFAs + relation).
    pub spec: SyncSpec,
    reversed: Option<SyncSpec>,
}

impl Group {
    /// Creates a group constraint.
    pub fn new(srcs: Vec<NodeVar>, dsts: Vec<NodeVar>, spec: SyncSpec) -> Self {
        assert_eq!(srcs.len(), spec.arity());
        assert_eq!(dsts.len(), spec.arity());
        Self {
            srcs,
            dsts,
            spec,
            reversed: None,
        }
    }

    /// Computes and caches the reversed spec; later uses borrow the cached
    /// value instead of cloning it.
    fn ensure_reversed(&mut self) {
        if self.reversed.is_none() {
            self.reversed = Some(self.spec.reversed());
        }
    }
}

/// Knobs for [`Problem::solve_with`]: which pipeline phases run.
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Phase 1: order variables and constraints by estimated cost (off =
    /// query-text order).
    pub plan: bool,
    /// Phase 2: semi-join domain reduction before enumeration.
    pub prune: bool,
    /// Cap on semi-join passes (the fixpoint usually lands earlier).
    pub max_prune_rounds: usize,
    /// Skip the prune phase when no binding is pinned: without a pinned
    /// singleton to seed the fixpoint, the first pass fills the full
    /// universe of every edge — on long-diameter shapes one BFS per node
    /// per edge — which can dwarf a search that exits on its first
    /// candidates. Early-exiting calls (`boolean`) set this and stay
    /// lazy; pinned calls (`check`/`witness_for`) still prune, because a
    /// singleton-seeded semi-join is one search from the pinned side.
    /// Exhaustive enumeration leaves it off (it sweeps most sources
    /// anyway, so the fills are never wasted).
    pub lazy_unpinned: bool,
}

impl SolveOptions {
    /// The full pipeline for exhaustive enumeration (`answers`-style calls).
    pub fn pipeline() -> Self {
        Self {
            plan: true,
            prune: true,
            max_prune_rounds: 8,
            lazy_unpinned: false,
        }
    }

    /// The pipeline with a low round cap, for early-exiting calls
    /// (`boolean`/`check`/`witness`) where a long fixpoint chase can cost
    /// more than the search it prunes; unpinned calls skip pruning
    /// entirely and stay lazy (see [`SolveOptions::lazy_unpinned`]).
    pub fn early_exit() -> Self {
        Self {
            plan: true,
            prune: true,
            max_prune_rounds: 2,
            lazy_unpinned: true,
        }
    }

    /// The historical behavior: no planning, no pruning, query-text order.
    /// Retained as the reference path for differential tests and the
    /// `e18_solver_pipeline` baseline.
    pub fn naive() -> Self {
        Self {
            plan: false,
            prune: false,
            max_prune_rounds: 0,
            lazy_unpinned: false,
        }
    }
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self::pipeline()
    }
}

/// Per-phase observability for one [`Problem::solve_with`] run.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// The plan's variable order (empty when planning was off).
    pub var_order: Vec<NodeVar>,
    /// Estimated cost per free edge (plan phase).
    pub edge_cost: Vec<u64>,
    /// Estimated cost per group (plan phase).
    pub group_cost: Vec<u64>,
    /// Semi-join passes executed (0 when pruning was off or trivial).
    pub rounds: usize,
    /// Whether the adaptive probe routed prune fills to per-source sweeps
    /// (long-diameter graphs) instead of batched wavefronts.
    pub per_source_sweeps: bool,
    /// Domain size per node variable before pruning (pinned variables are
    /// already singletons here).
    pub domain_before: Vec<usize>,
    /// Domain size per node variable after pruning.
    pub domain_after: Vec<usize>,
}

impl PipelineStats {
    /// Sum of domain sizes before pruning.
    pub fn total_before(&self) -> usize {
        self.domain_before.iter().sum()
    }

    /// Sum of domain sizes after pruning.
    pub fn total_after(&self) -> usize {
        self.domain_after.iter().sum()
    }
}

/// The constraint-solving problem.
pub struct Problem {
    /// Number of node variables.
    pub node_count: usize,
    /// Single-walker constraints.
    pub free_edges: Vec<FreeEdge>,
    /// Synchronized-group constraints.
    pub groups: Vec<Group>,
    /// Exploration statistics (product states visited across all searches).
    pub stats: ReachStats,
    /// Per-phase statistics of the most recent [`Problem::solve_with`] run
    /// (`None` for naive runs).
    pub pipeline: Option<PipelineStats>,
}

/// Candidate sweeps prewarm reachability caches in batches of one
/// source-membership stripe (the `u64` word width of `reach_all`), so a
/// batch costs one wavefront pass and an early-exiting search wastes at
/// most the rest of one stripe.
const SEED_BATCH: usize = 64;

/// Shared read-only context for one enumeration (phase 3).
struct EnumCtx<'a> {
    plan: Option<&'a SolvePlan>,
    domains: Option<&'a Domains>,
    /// The prune phase's probe decision, reused by seed-sweep prewarms.
    per_source_sweeps: bool,
}

impl EnumCtx<'_> {
    #[inline]
    fn admits(&self, v: NodeVar, n: NodeId) -> bool {
        self.domains.is_none_or(|d| d.contains(v, n))
    }
}

impl Problem {
    /// An empty problem over `node_count` node variables.
    pub fn new(node_count: usize) -> Self {
        Self {
            node_count,
            free_edges: Vec::new(),
            groups: Vec::new(),
            stats: ReachStats::default(),
            pipeline: None,
        }
    }

    /// Runs the solver with the default (full) pipeline. `pinned` pre-binds
    /// node variables (the Check problem); `required` lists variables that
    /// must be bound in every reported solution even when unconstrained
    /// (output variables). `on_solution` returns `true` to stop the search.
    pub fn solve(
        &mut self,
        db: &GraphDb,
        pinned: &HashMap<NodeVar, NodeId>,
        required: &[NodeVar],
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        self.solve_with(db, pinned, required, &SolveOptions::default(), on_solution)
    }

    /// [`Problem::solve`] with explicit pipeline knobs.
    pub fn solve_with(
        &mut self,
        db: &GraphDb,
        pinned: &HashMap<NodeVar, NodeId>,
        required: &[NodeVar],
        opts: &SolveOptions,
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        self.pipeline = None;
        // A pinned node outside the database can never be the image of a
        // morphism: no solutions (and no out-of-bounds product search).
        if pinned.values().any(|n| n.index() >= db.node_count()) {
            return false;
        }
        let mut bindings: Vec<Option<NodeId>> = vec![None; self.node_count];
        for (&v, &n) in pinned {
            bindings[v.index()] = Some(n);
        }

        // Phase 1: plan.
        let plan = (opts.plan || opts.prune)
            .then(|| SolvePlan::build(self.node_count, &self.free_edges, &self.groups, db));

        // Phase 2: prune. Group-only problems have no free edges to
        // semi-join, so domains would never shrink below the universe —
        // skip construction entirely. Early-exiting unpinned calls stay
        // lazy (see `SolveOptions::lazy_unpinned`). The adaptive probe's
        // verdict — memoized on the frozen database — routes the prune
        // fills and the seed-sweep prewarms in every pipeline mode; the
        // naive reference path never consults it.
        let has_edges = !self.free_edges.is_empty();
        let probe = (opts.plan || opts.prune)
            && has_edges
            && crate::domains::probe_long_diameter(db);
        let prune_now =
            opts.prune && has_edges && !(opts.lazy_unpinned && pinned.is_empty());
        let mut per_source_sweeps = probe;
        let domains = if prune_now {
            let mut doms = Domains::full(self.node_count, db.node_count());
            for (&v, &n) in pinned {
                // In range per the check above; collapse to a singleton so
                // the fixpoint starts from the pinned world.
                doms.pin(v, n);
            }
            let before = doms.sizes().to_vec();
            let outcome = doms.prune(
                db,
                &mut self.free_edges,
                plan.as_ref(),
                opts.max_prune_rounds,
                probe,
            );
            per_source_sweeps = outcome.per_source_sweeps;
            let p = plan.as_ref().expect("prune implies plan construction");
            self.pipeline = Some(PipelineStats {
                var_order: if opts.plan { p.var_order.clone() } else { Vec::new() },
                edge_cost: p.edge_cost.clone(),
                group_cost: p.group_cost.clone(),
                rounds: outcome.rounds,
                per_source_sweeps: outcome.per_source_sweeps,
                domain_before: before,
                domain_after: doms.sizes().to_vec(),
            });
            if outcome.emptied {
                return false;
            }
            Some(doms)
        } else {
            if let Some(p) = plan.as_ref() {
                self.pipeline = Some(PipelineStats {
                    var_order: if opts.plan { p.var_order.clone() } else { Vec::new() },
                    edge_cost: p.edge_cost.clone(),
                    group_cost: p.group_cost.clone(),
                    rounds: 0,
                    per_source_sweeps,
                    domain_before: Vec::new(),
                    domain_after: Vec::new(),
                });
            }
            None
        };

        // Phase 3: enumerate.
        let ctx = EnumCtx {
            plan: if opts.plan { plan.as_ref() } else { None },
            domains: domains.as_ref(),
            per_source_sweeps,
        };
        let mut edge_done = vec![false; self.free_edges.len()];
        let mut group_done = vec![false; self.groups.len()];
        self.recurse(
            db,
            &ctx,
            &mut bindings,
            &mut edge_done,
            &mut group_done,
            required,
            on_solution,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &mut self,
        db: &GraphDb,
        ctx: &EnumCtx<'_>,
        bindings: &mut Vec<Option<NodeId>>,
        edge_done: &mut Vec<bool>,
        group_done: &mut Vec<bool>,
        required: &[NodeVar],
        on_solution: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        // 1. Check any fully bound free edge.
        for i in 0..self.free_edges.len() {
            if edge_done[i] {
                continue;
            }
            let e = &mut self.free_edges[i];
            if let (Some(u), Some(v)) = (bindings[e.src.index()], bindings[e.dst.index()]) {
                if !e.cache.connects(db, u, v) {
                    return false;
                }
                edge_done[i] = true;
                let r = self.recurse(db, ctx, bindings, edge_done, group_done, required, on_solution);
                edge_done[i] = false;
                return r;
            }
        }
        // 2. Check any fully bound group.
        for i in 0..self.groups.len() {
            if group_done[i] {
                continue;
            }
            let all_bound = self.groups[i]
                .srcs
                .iter()
                .chain(self.groups[i].dsts.iter())
                .all(|v| bindings[v.index()].is_some());
            if all_bound {
                let starts: Vec<NodeId> = self.groups[i]
                    .srcs
                    .iter()
                    .map(|v| bindings[v.index()].unwrap())
                    .collect();
                let ends: Vec<NodeId> = self.groups[i]
                    .dsts
                    .iter()
                    .map(|v| bindings[v.index()].unwrap())
                    .collect();
                let ok = !SyncSearch::forward(db, &self.groups[i].spec)
                    .run(&starts, Some(&ends), Some(&self.stats))
                    .is_empty();
                if !ok {
                    return false;
                }
                group_done[i] = true;
                let r = self.recurse(db, ctx, bindings, edge_done, group_done, required, on_solution);
                group_done[i] = false;
                return r;
            }
        }
        // 3. Extend along a half-bound free edge — the cheapest one when a
        // plan is present, the first in query-text order otherwise (the
        // naive reference path).
        let mut half: Option<usize> = None;
        for (i, (e, done)) in self.free_edges.iter().zip(edge_done.iter()).enumerate() {
            if *done {
                continue;
            }
            if bindings[e.src.index()].is_some() || bindings[e.dst.index()].is_some() {
                match (half, ctx.plan) {
                    (None, _) => half = Some(i),
                    (Some(j), Some(p)) if p.edge_cost[i] < p.edge_cost[j] => half = Some(i),
                    _ => {}
                }
                if ctx.plan.is_none() {
                    break;
                }
            }
        }
        if let Some(i) = half {
            let (src, dst) = (self.free_edges[i].src, self.free_edges[i].dst);
            let (bs, bd) = (bindings[src.index()], bindings[dst.index()]);
            edge_done[i] = true;
            let candidates: Vec<NodeId> = if let Some(u) = bs {
                self.free_edges[i].targets_sorted(db, u, true)
            } else {
                self.free_edges[i].targets_sorted(db, bd.unwrap(), false)
            };
            let var = if bs.is_some() { dst } else { src };
            for c in candidates {
                if !ctx.admits(var, c) {
                    continue;
                }
                bindings[var.index()] = Some(c);
                if self.recurse(db, ctx, bindings, edge_done, group_done, required, on_solution) {
                    bindings[var.index()] = None;
                    edge_done[i] = false;
                    return true;
                }
                bindings[var.index()] = None;
            }
            edge_done[i] = false;
            return false;
        }
        // 4. Extend along a group with one side fully bound.
        for i in 0..self.groups.len() {
            if group_done[i] {
                continue;
            }
            let srcs_bound = self.groups[i]
                .srcs
                .iter()
                .all(|v| bindings[v.index()].is_some());
            let dsts_bound = self.groups[i]
                .dsts
                .iter()
                .all(|v| bindings[v.index()].is_some());
            if srcs_bound || dsts_bound {
                group_done[i] = true;
                let (open_vars, tuples) = if srcs_bound {
                    let starts: Vec<NodeId> = self.groups[i]
                        .srcs
                        .iter()
                        .map(|v| bindings[v.index()].unwrap())
                        .collect();
                    let tuples =
                        sync_targets(db, &self.groups[i].spec, &starts, Some(&self.stats));
                    (self.groups[i].dsts.clone(), tuples)
                } else {
                    let ends: Vec<NodeId> = self.groups[i]
                        .dsts
                        .iter()
                        .map(|v| bindings[v.index()].unwrap())
                        .collect();
                    // Walk the database *backwards* under the reversed spec
                    // to enumerate source tuples; the walk borrows the
                    // cached reversed spec.
                    self.groups[i].ensure_reversed();
                    let tuples = {
                        let rev = self.groups[i].reversed.as_ref().expect("just ensured");
                        sync_sources(db, rev, &ends, Some(&self.stats))
                    };
                    (self.groups[i].srcs.clone(), tuples)
                };
                'tuple: for tup in tuples {
                    // Bind open vars consistently (a variable may repeat and
                    // may already be bound), respecting pruned domains.
                    let mut newly: Vec<NodeVar> = Vec::new();
                    for (var, node) in open_vars.iter().zip(tup.iter()) {
                        match bindings[var.index()] {
                            Some(b) if b != *node => {
                                for v in newly.drain(..) {
                                    bindings[v.index()] = None;
                                }
                                continue 'tuple;
                            }
                            Some(_) => {}
                            None => {
                                if !ctx.admits(*var, *node) {
                                    for v in newly.drain(..) {
                                        bindings[v.index()] = None;
                                    }
                                    continue 'tuple;
                                }
                                bindings[var.index()] = Some(*node);
                                newly.push(*var);
                            }
                        }
                    }
                    let hit =
                        self.recurse(db, ctx, bindings, edge_done, group_done, required, on_solution);
                    for v in newly {
                        bindings[v.index()] = None;
                    }
                    if hit {
                        group_done[i] = false;
                        return true;
                    }
                }
                group_done[i] = false;
                return false;
            }
        }
        // 5. Seed: bind some variable occurring in a pending constraint —
        // the minimum-rank unbound variable of the plan's cheapest-first
        // order (one pass over the pending constraints via `seed_rank`), or
        // (naive) the first source variable of a pending constraint.
        let seed_var = if let Some(p) = ctx.plan {
            let mut best: Option<(usize, NodeVar)> = None;
            let consider = |v: NodeVar, best: &mut Option<(usize, NodeVar)>| {
                if bindings[v.index()].is_none() {
                    let rank = p.seed_rank[v.index()];
                    if best.is_none_or(|(r, _)| rank < r) {
                        *best = Some((rank, v));
                    }
                }
            };
            for (e, done) in self.free_edges.iter().zip(edge_done.iter()) {
                if !*done {
                    consider(e.src, &mut best);
                    consider(e.dst, &mut best);
                }
            }
            for (g, done) in self.groups.iter().zip(group_done.iter()) {
                if !*done {
                    for &v in g.srcs.iter().chain(g.dsts.iter()) {
                        consider(v, &mut best);
                    }
                }
            }
            best.map(|(_, v)| v)
        } else {
            self.free_edges
                .iter()
                .zip(edge_done.iter())
                .filter(|(_, d)| !**d)
                .map(|(e, _)| e.src)
                .chain(
                    self.groups
                        .iter()
                        .zip(group_done.iter())
                        .filter(|(_, d)| !**d)
                        .flat_map(|(g, _)| g.srcs.iter().copied()),
                )
                .find(|v| bindings[v.index()].is_none())
        };
        if let Some(var) = seed_var {
            // Sweep the candidate nodes (the pruned domain when phase 2
            // ran, all database nodes otherwise) in stripe-sized chunks,
            // prewarming the cache of every pending free edge touching
            // `var` with one batched wavefront per chunk: the
            // `connects`/`targets` calls the recursion makes after binding
            // `var` are then memo hits. The first chunk stays per-source —
            // a boolean/check call that succeeds among the first candidates
            // (the common early exit) then never pays for a wavefront, and
            // a sweep that gets past it batches everything from the second
            // chunk on. On long-diameter graphs the prune probe's verdict
            // carries over and the prewarm is skipped entirely (per-source
            // sweeps happen lazily inside the recursion). Only the current
            // chunk is ever materialized.
            let mut candidates: Box<dyn Iterator<Item = NodeId> + '_> = match ctx.domains {
                Some(d) => Box::new(d.iter(var)),
                None => Box::new(db.nodes()),
            };
            let mut chunk: Vec<NodeId> = Vec::with_capacity(SEED_BATCH);
            let mut chunk_idx = 0usize;
            loop {
                chunk.clear();
                chunk.extend(candidates.by_ref().take(SEED_BATCH));
                if chunk.is_empty() {
                    break;
                }
                if chunk_idx > 0 && !ctx.per_source_sweeps {
                    for (i, e) in self.free_edges.iter_mut().enumerate() {
                        if edge_done[i] {
                            continue;
                        }
                        if e.src == var {
                            e.cache.fill_targets(db, &chunk);
                        }
                        if e.dst == var {
                            e.cache.fill_sources(db, &chunk);
                        }
                    }
                }
                for &node in &chunk {
                    bindings[var.index()] = Some(node);
                    if self.recurse(db, ctx, bindings, edge_done, group_done, required, on_solution)
                    {
                        bindings[var.index()] = None;
                        return true;
                    }
                    bindings[var.index()] = None;
                }
                chunk_idx += 1;
            }
            return false;
        }
        // All constraints satisfied: bind required-but-unbound variables.
        if let Some(&var) = required.iter().find(|v| bindings[v.index()].is_none()) {
            for node in db.nodes() {
                bindings[var.index()] = Some(node);
                if self.recurse(db, ctx, bindings, edge_done, group_done, required, on_solution) {
                    bindings[var.index()] = None;
                    return true;
                }
                bindings[var.index()] = None;
            }
            return false;
        }
        on_solution(bindings)
    }
}

impl FreeEdge {
    fn targets_sorted(&mut self, db: &GraphDb, from: NodeId, forward: bool) -> Vec<NodeId> {
        let set = if forward {
            self.cache.targets(db, from)
        } else {
            self.cache.sources(db, from)
        };
        let mut v: Vec<NodeId> = set.iter().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_automata::{parse_regex, Nfa};
    use cxrpq_graph::Alphabet;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    fn db_cycle(word: &str) -> (GraphDb, Vec<NodeId>) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word(word).unwrap();
        let nodes: Vec<NodeId> = (0..w.len()).map(|_| db.add_node()).collect();
        for (i, &s) in w.iter().enumerate() {
            db.add_edge(nodes[i], s, nodes[(i + 1) % w.len()]);
        }
        (db.freeze(), nodes)
    }

    fn nfa(db: &GraphDb, s: &str) -> Nfa {
        let mut a = db.alphabet().clone();
        Nfa::from_regex(&parse_regex(s, &mut a).unwrap())
    }

    #[test]
    fn single_edge_boolean() {
        let (db, _) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "abca")),
        });
        let mut found = false;
        p.solve(&db, &HashMap::new(), &[], &mut |_| {
            found = true;
            true
        });
        assert!(found);
        // No path labelled "aa" on the cycle.
        let mut p2 = Problem::new(2);
        p2.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "aa")),
        });
        let mut found2 = false;
        p2.solve(&db, &HashMap::new(), &[], &mut |_| {
            found2 = true;
            true
        });
        assert!(!found2);
    }

    #[test]
    fn conjunction_shares_nodes() {
        // x -ab-> y and y -ca-> x on the cycle abcabc: y = x+2, and from y
        // reading "ca" lands on y+2 = x+4 ≠ x… on a 6-cycle with word
        // abcabc: positions 0..5; x=0: ab leads to 2; from 2, "ca" = c,a →
        // 2:c->3, 3:a->4 ≠ 0. x=3: ab: 3 is 'a'? word abcabc: edge i labelled
        // w[i]. x=3: a at 3, b at 4 → y=5; from 5: c at 5, a at 0 → 1 ≠ 3.
        // So unsatisfiable; but x -ab-> y, y -cabc-> x is satisfiable (x=0).
        let (db, nodes) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "ab")),
        });
        p.free_edges.push(FreeEdge {
            src: NodeVar(1),
            dst: NodeVar(0),
            cache: ReachCache::new(nfa(&db, "ca")),
        });
        let mut found = false;
        p.solve(&db, &HashMap::new(), &[], &mut |_| {
            found = true;
            true
        });
        assert!(!found);

        let mut p2 = Problem::new(2);
        p2.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "ab")),
        });
        p2.free_edges.push(FreeEdge {
            src: NodeVar(1),
            dst: NodeVar(0),
            cache: ReachCache::new(nfa(&db, "cabc")),
        });
        let mut sol = None;
        p2.solve(&db, &HashMap::new(), &[], &mut |b| {
            sol = Some((b[0].unwrap(), b[1].unwrap()));
            true
        });
        assert_eq!(sol, Some((nodes[0], nodes[2])));
    }

    #[test]
    fn pinned_bindings_check() {
        let (db, nodes) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "abc")),
        });
        let pinned: HashMap<NodeVar, NodeId> =
            [(NodeVar(0), nodes[0]), (NodeVar(1), nodes[3])].into();
        let mut found = false;
        p.solve(&db, &pinned, &[], &mut |_| {
            found = true;
            true
        });
        assert!(found);
        let pinned2: HashMap<NodeVar, NodeId> =
            [(NodeVar(0), nodes[0]), (NodeVar(1), nodes[4])].into();
        let mut found2 = false;
        p.solve(&db, &pinned2, &[], &mut |_| {
            found2 = true;
            true
        });
        assert!(!found2);
    }

    #[test]
    fn pinned_out_of_range_yields_no_solutions() {
        // Regression: a pinned NodeId beyond the database used to index the
        // product visited-set out of bounds; now it simply has no solutions
        // (under both the pipeline and the naive reference path).
        let (db, nodes) = db_cycle("abcabc");
        let mut p = Problem::new(2);
        p.free_edges.push(FreeEdge {
            src: NodeVar(0),
            dst: NodeVar(1),
            cache: ReachCache::new(nfa(&db, "abc")),
        });
        let bad: HashMap<NodeVar, NodeId> =
            [(NodeVar(0), nodes[0]), (NodeVar(1), NodeId(1_000))].into();
        for opts in [SolveOptions::default(), SolveOptions::naive()] {
            let mut found = false;
            let hit = p.solve_with(&db, &bad, &[], &opts, &mut |_| {
                found = true;
                true
            });
            assert!(!hit && !found, "out-of-range pin must yield no solutions");
        }
    }

    #[test]
    fn group_constraint_in_pattern() {
        // Pattern: x -w-> y, x -w-> z with the same word w ∈ a(b|c): on a
        // graph where only one branch exists, y = z is forced.
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let a = db.alphabet().sym("a");
        let b = db.alphabet().sym("b");
        let c = db.alphabet().sym("c");
        let s = db.add_node();
        let m = db.add_node();
        let t1 = db.add_node();
        let t2 = db.add_node();
        db.add_edge(s, a, m);
        db.add_edge(m, b, t1);
        db.add_edge(m, c, t2);
        let db = db.freeze();
        let mut p = Problem::new(3); // x=0, y=1, z=2
        let def = nfa(&db, "a(b|c)");
        p.groups.push(Group::new(
            vec![NodeVar(0), NodeVar(0)],
            vec![NodeVar(1), NodeVar(2)],
            SyncSpec::equality_group(Some(def), 2),
        ));
        let mut sols = Vec::new();
        p.solve(&db, &HashMap::new(), &[], &mut |bnd| {
            sols.push((bnd[0].unwrap(), bnd[1].unwrap(), bnd[2].unwrap()));
            false
        });
        // Solutions: (s, t1, t1) and (s, t2, t2) — never (s, t1, t2).
        assert!(sols.contains(&(s, t1, t1)));
        assert!(sols.contains(&(s, t2, t2)));
        assert!(!sols.contains(&(s, t1, t2)));
        assert!(!sols.contains(&(s, t2, t1)));
    }

    #[test]
    fn group_solved_backwards_from_pinned_dsts() {
        // Regression: when only the group's *destinations* are pinned, the
        // solver must enumerate source tuples by a backward walk (an earlier
        // version ran the reversed spec forward and produced false
        // negatives).
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word("abc").unwrap();
        let s1 = db.add_node();
        let t1 = db.add_node();
        let s2 = db.add_node();
        let t2 = db.add_node();
        db.add_word_path(s1, &w, t1);
        db.add_word_path(s2, &w, t2);
        // A third path labelled acb, used by the mismatch check below (built
        // up front so the database can be frozen once).
        let w2 = db.alphabet().parse_word("acb").unwrap();
        let s3 = db.add_node();
        let t3 = db.add_node();
        db.add_word_path(s3, &w2, t3);
        let db = db.freeze();
        let mut p = Problem::new(4); // x=0, y=1, u=2, v=3
        p.groups.push(Group::new(
            vec![NodeVar(0), NodeVar(2)],
            vec![NodeVar(1), NodeVar(3)],
            SyncSpec::equality_group(None, 2),
        ));
        // Pin the two destinations; the sources must be found backwards.
        let pinned: HashMap<NodeVar, NodeId> = [(NodeVar(1), t1), (NodeVar(3), t2)].into();
        let mut sols = Vec::new();
        p.solve(&db, &pinned, &[], &mut |b| {
            sols.push((b[0].unwrap(), b[2].unwrap()));
            false
        });
        assert!(sols.contains(&(s1, s2)), "missing backward-derived sources");
        // Distinct-word destinations are rejected.
        let pinned2: HashMap<NodeVar, NodeId> = [(NodeVar(1), t1), (NodeVar(3), t3)].into();
        let mut sols2 = Vec::new();
        p.solve(&db, &pinned2, &[], &mut |b| {
            sols2.push((b[0].unwrap(), b[2].unwrap()));
            false
        });
        // Short equal suffixes (e.g. ε at the sinks) are fine, but the full
        // chains read abc vs acb and must not pair up.
        assert!(!sols2.contains(&(s1, s3)), "abc cannot equal acb");
    }

    #[test]
    fn required_vars_enumerated() {
        let (db, _) = db_cycle("ab");
        let mut p = Problem::new(1);
        let mut count = 0;
        p.solve(&db, &HashMap::new(), &[NodeVar(0)], &mut |_| {
            count += 1;
            false
        });
        assert_eq!(count, 2); // both cycle nodes
    }

    #[test]
    fn pipeline_and_naive_agree_and_stats_report() {
        let (db, _) = db_cycle("abcabc");
        let build = |db: &GraphDb| {
            let mut p = Problem::new(3);
            p.free_edges.push(FreeEdge {
                src: NodeVar(0),
                dst: NodeVar(1),
                cache: ReachCache::new(nfa(db, "ab")),
            });
            p.free_edges.push(FreeEdge {
                src: NodeVar(1),
                dst: NodeVar(2),
                cache: ReachCache::new(nfa(db, "ca")),
            });
            p
        };
        let collect = |opts: &SolveOptions| {
            let mut p = build(&db);
            let mut sols = Vec::new();
            p.solve_with(&db, &HashMap::new(), &[], opts, &mut |b| {
                sols.push(b.to_vec());
                false
            });
            sols.sort();
            (sols, p.pipeline)
        };
        let (fast, stats) = collect(&SolveOptions::pipeline());
        let (slow, naive_stats) = collect(&SolveOptions::naive());
        assert_eq!(fast, slow);
        let stats = stats.expect("pipeline records stats");
        assert!(naive_stats.is_none());
        assert_eq!(stats.var_order.len(), 3);
        assert!(stats.rounds >= 1);
        assert!(stats.total_after() <= stats.total_before());
    }
}
