//! Long-lived worker pool shared by every parallel code path.
//!
//! The frontier engine used to spawn scoped threads at every BFS level, which
//! oversubscribes a loaded server: `Q` concurrent queries each spawning `T`
//! shard threads puts `Q * T` runnable threads on `T` cores. This pool owns
//! the hardware threads once, and both intra-query level sharding
//! ([`crate::frontier::expand_sharded`]) and inter-query parallelism (the CLI
//! `serve` connection handlers) draw from the same scheduler.
//!
//! Design notes:
//!
//! - **Help-while-wait.** A thread submitting a sharded scope does not block
//!   idle: after running its own shard it pops and runs queued jobs (its own
//!   or another scope's) until its scope completes. This makes nested
//!   `run_sharded` calls and pool-size-1 configurations deadlock-free: some
//!   thread always holds a runnable job, so global progress is guaranteed.
//! - **Lifetime erasure.** Jobs borrow the caller's stack (`&[T]` shards and
//!   result slots). They are transmuted to `'static` for the queue; this is
//!   sound because [`WorkerPool::run_sharded`] does not return — and thus the
//!   borrowed frames cannot unwind — until every job of the scope has
//!   finished, panicked or not.
//! - **Panic propagation.** Worker panics are caught, recorded on the scope,
//!   and re-raised on the submitting thread after the scope drains, mirroring
//!   `std::thread::scope` semantics.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A fixed-size pool of worker threads with a shared FIFO job queue.
///
/// Most callers want [`WorkerPool::global`], sized once from
/// `available_parallelism`. Tests that need a pinned width build their own
/// with [`WorkerPool::new`] (and typically `Box::leak` it, since the sharded
/// entry points want a `'static` handle).
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    workers: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl WorkerPool {
    /// Build a pool with exactly `threads` worker threads (clamped to >= 1).
    pub fn new(threads: usize) -> Self {
        let workers = threads.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("cxrpq-worker-{idx}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn pool worker");
            handles.push(handle);
        }
        WorkerPool {
            inner,
            workers,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide pool, created on first use and sized from
    /// `available_parallelism`. Never torn down.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            WorkerPool::new(threads)
        })
    }

    /// Number of worker threads owned by the pool.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Run a fire-and-forget job on the pool.
    ///
    /// Used by callers that want inter-query parallelism without a join
    /// handle; sharded scopes should use [`WorkerPool::run_sharded`].
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.push_jobs(vec![Box::new(job)]);
    }

    /// Split `items` into at most `shards` contiguous chunks and run `worker`
    /// on each, returning the per-shard results in chunk order.
    ///
    /// The calling thread always executes the final chunk itself and then
    /// helps drain the queue until the scope completes, so the call makes
    /// progress even when every pool worker is busy with other queries.
    /// Panics in any shard are re-raised here after all shards finish.
    pub fn run_sharded<T, R, F>(&self, items: &[T], shards: usize, worker: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        if shards <= 1 || items.len() <= 1 {
            return vec![worker(0, items)];
        }
        let chunk = items.len().div_ceil(shards.min(items.len()));
        let chunks: Vec<&[T]> = items.chunks(chunk).collect();
        let shards = chunks.len();
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(shards, || None);
        let scope = ScopeState::new(shards - 1);
        let slots = SendPtr(results.as_mut_ptr());

        let mut jobs: Vec<Job> = Vec::with_capacity(shards - 1);
        for (i, part) in chunks[..shards - 1].iter().enumerate() {
            let part: &[T] = part;
            let worker_ref = &worker;
            let scope_ref = &scope;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                // Rebind the whole wrapper: edition-2021 disjoint capture
                // would otherwise capture the bare `*mut` field, which is
                // deliberately not `Send`.
                let slots = slots;
                let out = catch_unwind(AssertUnwindSafe(|| worker_ref(i, part)));
                match out {
                    // SAFETY: each job writes only its own slot `i`, the
                    // submitting thread writes only slot `shards - 1`, and
                    // the vector is not read until the scope latch reports
                    // every job finished (release/acquire on `remaining`).
                    Ok(r) => unsafe { *slots.0.add(i) = Some(r) },
                    Err(payload) => scope_ref.record_panic(payload),
                }
                scope_ref.finish();
            });
            // SAFETY: the job borrows `chunks`, `results`, `worker`, and
            // `scope` from this frame. `run_sharded` blocks (running the last
            // chunk, then helping/waiting) until `scope` counts every job
            // finished, so the borrows outlive the job's execution; the
            // 'static lifetime is never used to keep the job alive past that.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(job)
            };
            jobs.push(job);
        }
        self.push_jobs(jobs);

        let last = catch_unwind(AssertUnwindSafe(|| worker(shards - 1, chunks[shards - 1])));
        match last {
            // SAFETY: see slot-disjointness argument above.
            Ok(r) => unsafe { *slots.0.add(shards - 1) = Some(r) },
            Err(payload) => scope.record_panic(payload),
        }
        self.help_until_done(&scope);

        if let Some(payload) = scope.take_panic() {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|r| r.expect("every shard produced a result"))
            .collect()
    }

    fn push_jobs(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        let single = jobs.len() == 1;
        {
            let mut st = self.inner.state.lock().unwrap();
            st.queue.extend(jobs);
        }
        if single {
            self.inner.work_ready.notify_one();
        } else {
            self.inner.work_ready.notify_all();
        }
    }

    /// Run queued jobs (any scope's — progress is progress) until `scope` is
    /// done, sleeping on the scope latch only when the queue is empty.
    fn help_until_done(&self, scope: &ScopeState) {
        while scope.remaining.load(Ordering::Acquire) != 0 {
            let job = self.inner.state.lock().unwrap().queue.pop_front();
            match job {
                Some(job) => job(),
                None => {
                    let guard = scope.done.lock().unwrap();
                    if scope.remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    // Jobs of this scope were all enqueued before the help
                    // loop started, so an empty queue means they are running
                    // on other threads; `finish` takes `done` before
                    // notifying, so this wait cannot miss the last decrement.
                    drop(scope.done_cv.wait(guard).unwrap());
                }
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
        }
        self.inner.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = inner.work_ready.wait(st).unwrap();
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// Completion latch for one `run_sharded` call.
struct ScopeState {
    remaining: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new(jobs: usize) -> Self {
        ScopeState {
            remaining: AtomicUsize::new(jobs),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().unwrap().take()
    }

    fn finish(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done.lock().unwrap();
            self.done_cv.notify_all();
        }
    }
}

/// Raw result-slot pointer, shared across shard jobs.
///
/// Wrapped so the jobs can capture it; each job dereferences only its own
/// disjoint slot (see the safety comments at the write sites).
struct SendPtr<R>(*mut Option<R>);

impl<R> Clone for SendPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SendPtr<R> {}
// SAFETY: the pointer targets slots owned by the submitting thread's frame;
// sends are confined to the scope's lifetime and writes are slot-disjoint.
unsafe impl<R: Send> Send for SendPtr<R> {}
// SAFETY: jobs only copy the pointer; all dereferences are slot-disjoint.
unsafe impl<R: Send> Sync for SendPtr<R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn sharded_results_in_chunk_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u32> = (0..1000).collect();
        let sums = pool.run_sharded(&items, 4, |_, slice| slice.iter().sum::<u32>());
        assert_eq!(sums.len(), 4);
        assert_eq!(sums.iter().sum::<u32>(), (0..1000).sum::<u32>());
        // Chunk order: shard 0 holds the smallest prefix.
        assert!(sums[0] < sums[3]);
    }

    #[test]
    fn single_shard_runs_inline() {
        let pool = WorkerPool::new(2);
        let items = [1u32, 2, 3];
        let out = pool.run_sharded(&items, 1, |idx, slice| {
            assert_eq!(idx, 0);
            slice.len()
        });
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn more_shards_than_items_degrades_gracefully() {
        let pool = WorkerPool::new(4);
        let items = [7u32, 8];
        let out = pool.run_sharded(&items, 8, |_, slice| slice.to_vec());
        let flat: Vec<u32> = out.into_iter().flatten().collect();
        assert_eq!(flat, vec![7, 8]);
    }

    #[test]
    fn pool_of_one_still_completes() {
        // With one worker the submitting thread must self-help; a deadlock
        // here would hang the test.
        let pool = WorkerPool::new(1);
        let items: Vec<u32> = (0..64).collect();
        let sums = pool.run_sharded(&items, 8, |_, slice| slice.iter().sum::<u32>());
        assert_eq!(sums.iter().sum::<u32>(), (0..64).sum::<u32>());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = WorkerPool::new(2);
        let outer: Vec<u32> = (0..8).collect();
        let totals = pool.run_sharded(&outer, 4, |_, slice| {
            let inner: Vec<u32> = slice.iter().map(|v| v * 2).collect();
            pool.run_sharded(&inner, 2, |_, s| s.iter().sum::<u32>())
                .iter()
                .sum::<u32>()
        });
        assert_eq!(totals.iter().sum::<u32>(), (0..8).map(|v| v * 2).sum());
    }

    #[test]
    fn shard_panic_propagates_after_drain() {
        let pool = WorkerPool::new(2);
        let items: Vec<u32> = (0..100).collect();
        let hit = AtomicBool::new(false);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_sharded(&items, 4, |idx, _| {
                if idx == 1 {
                    panic!("shard boom");
                }
                hit.store(true, Ordering::SeqCst);
                idx
            })
        }));
        assert!(result.is_err());
        assert!(hit.load(Ordering::SeqCst));
        // The pool stays usable after a propagated panic.
        let ok = pool.run_sharded(&items, 2, |_, slice| slice.len());
        assert_eq!(ok.iter().sum::<usize>(), items.len());
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let pool = WorkerPool::new(2);
        let flag = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&flag);
        pool.spawn(move || seen.store(true, Ordering::SeqCst));
        for _ in 0..100 {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("detached job never ran");
    }

    #[test]
    fn concurrent_scopes_share_the_pool() {
        let pool: &'static WorkerPool = Box::leak(Box::new(WorkerPool::new(3)));
        let mut joins = Vec::new();
        for q in 0..6u32 {
            joins.push(std::thread::spawn(move || {
                let items: Vec<u32> = (0..256).map(|v| v + q).collect();
                let sums = pool.run_sharded(&items, 4, |_, slice| slice.iter().sum::<u32>());
                sums.iter().sum::<u32>()
            }));
        }
        for (q, join) in joins.into_iter().enumerate() {
            let got = join.join().unwrap();
            let want: u32 = (0..256).map(|v| v + q as u32).sum();
            assert_eq!(got, want);
        }
    }
}
