//! Unrestricted CXRPQ evaluation by iterative image-bound deepening.
//!
//! The paper proves PSpace-hardness in data complexity (Theorem 1) and
//! leaves the upper bound open (§8). This engine is the pragmatic
//! substitute documented in DESIGN.md: evaluate `D ⊨_{≤k} q` for growing
//! `k`; a hit at any `k` is a hit for the unrestricted semantics (since
//! `L^{≤k}(ᾱ) ⊆ L(ᾱ)`), and a caller-supplied cap bounds the search. For
//! instances with a known witness-size bound (e.g. the Theorem 1 reduction,
//! where images are words of the NFA-intersection) the cap makes the
//! procedure complete.

use crate::bounded::{BoundedEvaluator, BoundedStats};
use crate::cxrpq::Cxrpq;
use cxrpq_graph::GraphDb;

/// Outcome of iterative deepening.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GenericOutcome {
    /// A match exists; `k` is the smallest image bound that exhibited it.
    Match {
        /// Smallest successful image bound.
        k: usize,
    },
    /// No match with any image bound ≤ the cap. Definitive only when the
    /// caller knows a witness-size bound ≤ cap.
    NoMatchUpTo {
        /// The exhausted cap.
        cap: usize,
    },
}

/// The iterative-deepening engine for unrestricted CXRPQs.
pub struct GenericEvaluator<'q> {
    q: &'q Cxrpq,
    cap: usize,
}

impl<'q> GenericEvaluator<'q> {
    /// Creates the engine with an image-size cap.
    pub fn new(q: &'q Cxrpq, cap: usize) -> Self {
        Self { q, cap }
    }

    /// Runs the deepening loop.
    pub fn evaluate(&self, db: &GraphDb) -> GenericOutcome {
        for k in 0..=self.cap {
            if BoundedEvaluator::new(self.q, k).boolean(db) {
                return GenericOutcome::Match { k };
            }
        }
        GenericOutcome::NoMatchUpTo { cap: self.cap }
    }

    /// Iterative-deepening Check: `t̄ ∈ q(D)`?
    pub fn check(&self, db: &GraphDb, tuple: &[cxrpq_graph::NodeId]) -> GenericOutcome {
        for k in 0..=self.cap {
            if BoundedEvaluator::new(self.q, k).check(db, tuple) {
                return GenericOutcome::Match { k };
            }
        }
        GenericOutcome::NoMatchUpTo { cap: self.cap }
    }

    /// Runs the deepening loop, accumulating enumeration counters.
    pub fn evaluate_with_stats(&self, db: &GraphDb) -> (GenericOutcome, BoundedStats) {
        let mut total = BoundedStats::default();
        for k in 0..=self.cap {
            let (hit, stats) = BoundedEvaluator::new(self.q, k).boolean_with_stats(db);
            total.mappings += stats.mappings;
            total.crpqs_evaluated += stats.crpqs_evaluated;
            total.product_states += stats.product_states;
            if hit {
                return (GenericOutcome::Match { k }, total);
            }
        }
        (GenericOutcome::NoMatchUpTo { cap: self.cap }, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cxrpq::CxrpqBuilder;
    use cxrpq_graph::{Alphabet, GraphBuilder};
    use std::sync::Arc;

    #[test]
    fn finds_minimal_image_bound() {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let m1 = db.add_node();
        let m2 = db.add_node();
        let t = db.add_node();
        let w = db.alphabet().parse_word("ab").unwrap();
        let c = db.alphabet().parse_word("c").unwrap();
        db.add_word_path(s, &w, m1);
        db.add_word_path(m1, &c, m2);
        db.add_word_path(m2, &w, t);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha2)
            .edge("x", "z{(a|b)+}cz", "y")
            .build()
            .unwrap();
        // No w c w subpath with |w| = 1 exists on this chain ("a c a" would
        // need an a-edge into m1); the minimal witness is z = ab.
        assert_eq!(
            GenericEvaluator::new(&q, 5).evaluate(&db),
            GenericOutcome::Match { k: 2 }
        );
    }

    #[test]
    fn cap_exhaustion_reported() {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t = db.add_node();
        let a = db.alphabet().sym("a");
        db.add_edge(s, a, t);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha2)
            .edge("x", "z{b+}z", "y")
            .build()
            .unwrap();
        assert_eq!(
            GenericEvaluator::new(&q, 3).evaluate(&db),
            GenericOutcome::NoMatchUpTo { cap: 3 }
        );
    }

    #[test]
    fn check_deepens_like_evaluate() {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let m = db.add_node();
        let t = db.add_node();
        let w = db.alphabet().parse_word("ab").unwrap();
        db.add_word_path(s, &w, m);
        db.add_word_path(m, &w, t);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        // z{Σ+} z with the only repeated word being "ab" end to end.
        let q = CxrpqBuilder::new(&mut alpha2)
            .edge("x", "z{.+}z", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        assert_eq!(
            GenericEvaluator::new(&q, 4).check(&db, &[s, t]),
            GenericOutcome::Match { k: 2 }
        );
        // m is only reachable by odd-length splits: w w with |w| = 1 fails
        // (a then b differ), so (s, m) needs… in fact no split works.
        assert_eq!(
            GenericEvaluator::new(&q, 2).check(&db, &[s, m]),
            GenericOutcome::NoMatchUpTo { cap: 2 }
        );
    }

    #[test]
    fn stats_accumulate_across_depths() {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t = db.add_node();
        let w = db.alphabet().parse_word("abab").unwrap();
        db.add_word_path(s, &w, t);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha2)
            .edge("x", "z{(a|b)(a|b)}z", "y")
            .build()
            .unwrap();
        let (outcome, stats) = GenericEvaluator::new(&q, 4).evaluate_with_stats(&db);
        assert_eq!(outcome, GenericOutcome::Match { k: 2 });
        // Depths 0, 1, 2 all enumerate at least the ε mapping each.
        assert!(stats.mappings >= 3, "mappings = {}", stats.mappings);
        assert!(stats.crpqs_evaluated >= 1);
    }

    #[test]
    fn soundness_against_vsf_on_vsf_queries() {
        // On vstar-free queries, a Match outcome must agree with the exact
        // engine; NoMatchUpTo must never contradict a vsf "no".
        use crate::vsf_eval::VsfEvaluator;
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        for word in ["abab", "ba", "bb"] {
            let s = db.add_node();
            let t = db.add_node();
            let w = db.alphabet().parse_word(word).unwrap();
            db.add_word_path(s, &w, t);
        }
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        for pat in ["z{ab|ba}z", "z{a+}bz", "z{bb}z"] {
            let q = CxrpqBuilder::new(&mut alpha2)
                .edge("x", pat, "y")
                .build()
                .unwrap();
            let exact = VsfEvaluator::new(&q).unwrap().boolean(&db);
            match GenericEvaluator::new(&q, 4).evaluate(&db) {
                GenericOutcome::Match { .. } => assert!(exact, "{pat}"),
                GenericOutcome::NoMatchUpTo { .. } => {
                    // Image words here are ≤ 2 symbols, so cap 4 is complete.
                    assert!(!exact, "{pat}");
                }
            }
        }
    }
}
