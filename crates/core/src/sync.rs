//! Synchronized multi-walker product search.
//!
//! This is the algorithmic heart of both the Lemma 3 evaluator (simple
//! CXRPQs: all edges of a variable group must be labelled by the *same*
//! word, i.e. an equality relation whose definition edge additionally
//! satisfies a regular constraint) and the ECRPQ evaluator (arbitrary
//! regular relations over tuples of paths).
//!
//! A [`SyncSpec`] bundles one NFA per walker plus a [`RegularRelation`] over
//! the walkers' words. The search explores the product
//! `V^s × 2^{Q₁} × … × 2^{Q_s} × Q_rel × 2^s` (positions, per-walker NFA
//! state sets, relation state, finished mask) on the fly — the explicit form
//! of the `G_{q′,D}` graph in the proof of Lemma 3, which underlies the
//! `O(|q| log |D|)` nondeterministic space bound.
//!
//! Representation: per-walker state sets are [`MaskSim`] bitmasks
//! (`⌈|Qᵢ|/64⌉` words each, concatenated into one flat `Vec<u64>` per
//! configuration), adjacency is expanded over merged per-label runs (base
//! CSR range + delta overlay, [`cxrpq_graph::EdgeRun`]), and — whenever
//! positions, masks, relation state and finished
//! bits together fit in 128 bits — the visited set is keyed by a packed
//! `u128` instead of hashing whole configurations.
//!
//! The search is level-synchronous: each BFS level is expanded as a batch,
//! and levels above the [`FrontierConfig`] threshold are sharded across
//! scoped worker threads (the shared frontier engine of
//! [`crate::frontier`]). Workers dedup their discoveries in private
//! per-level sets; the level barrier merges them into the global visited
//! set, so results are identical to the serial walk regardless of thread
//! count.

use crate::frontier::{expand_sharded_governed, FrontierConfig};
use crate::governor::Governor;
use crate::reach::{reverse_nfa, Direction, ReachStats};
use crate::relation::{RegularRelation, RelLabel, TupComp};
use cxrpq_automata::{MaskSim, Nfa};
use cxrpq_graph::{GraphDb, NodeId, Symbol};
use std::collections::HashSet;

/// A synchronized group: per-walker automata plus a relation over their
/// words.
#[derive(Clone, Debug)]
pub struct SyncSpec {
    /// One automaton per walker (walker `i`'s path label must be accepted).
    pub nfas: Vec<Nfa>,
    /// The relation constraining the tuple of path labels.
    pub relation: RegularRelation,
}

impl SyncSpec {
    /// A spec requiring all walkers to read the same word, with walker 0
    /// additionally constrained by `def_nfa` (the CXRPQ variable-group
    /// shape: one definition edge + references).
    pub fn equality_group(mut def_nfa: Option<Nfa>, arity: usize) -> Self {
        let mut nfas = Vec::with_capacity(arity);
        for i in 0..arity {
            match (i, def_nfa.take()) {
                (0, Some(m)) => nfas.push(m),
                _ => nfas.push(sigma_star_nfa()),
            }
        }
        Self {
            nfas,
            relation: RegularRelation::equality(arity),
        }
    }

    /// Arity (number of walkers).
    pub fn arity(&self) -> usize {
        self.nfas.len()
    }

    /// The reversed spec, for backward search.
    pub fn reversed(&self) -> Self {
        Self {
            nfas: self.nfas.iter().map(reverse_nfa).collect(),
            relation: self.relation.reversed(),
        }
    }
}

/// A 2-state automaton for Σ*.
pub fn sigma_star_nfa() -> Nfa {
    let mut m = Nfa::with_states(1);
    m.add_transition(
        cxrpq_automata::StateId(0),
        cxrpq_automata::Label::Any,
        cxrpq_automata::StateId(0),
    );
    m.set_final(cxrpq_automata::StateId(0), true);
    m
}

/// One configuration of the synchronized product (crate-internal: the
/// witness extractor re-runs the search with parent tracking).
///
/// `statesets` concatenates the per-walker [`MaskSim`] bitmasks (walker `i`
/// occupies the word range the owning [`SyncSearch`] assigns it).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct SyncState {
    pub(crate) positions: Vec<NodeId>,
    pub(crate) finished: u64,
    pub(crate) statesets: Vec<u64>,
    pub(crate) rstate: u32,
}

/// Packs configurations into `u128` visited keys when the product's
/// coordinates are jointly narrow enough.
struct Packer {
    node_bits: u32,
    state_bits: Vec<u32>,
    rel_bits: u32,
}

impl Packer {
    /// A packer for the given sizes, or `None` when a configuration cannot
    /// fit in 128 bits (multi-word masks never pack).
    fn try_new(db: &GraphDb, sims: &[MaskSim], relation: &RegularRelation) -> Option<Self> {
        let bits_for = |n: usize| usize::BITS - n.saturating_sub(1).leading_zeros();
        if sims.iter().any(|s| s.words() > 1) {
            return None;
        }
        let node_bits = bits_for(db.node_count()).max(1);
        let rel_bits = bits_for(relation.state_count()).max(1);
        let state_bits: Vec<u32> = sims.iter().map(|s| s.state_count().max(1) as u32).collect();
        let total = sims.len() as u32 * node_bits
            + state_bits.iter().sum::<u32>()
            + rel_bits
            + sims.len() as u32;
        (total <= 128).then_some(Self {
            node_bits,
            state_bits,
            rel_bits,
        })
    }

    fn pack(&self, st: &SyncState) -> u128 {
        let mut acc: u128 = 0;
        for (i, p) in st.positions.iter().enumerate() {
            acc = (acc << self.node_bits) | p.0 as u128;
            acc = (acc << self.state_bits[i]) | st.statesets[i] as u128;
        }
        acc = (acc << self.rel_bits) | st.rstate as u128;
        (acc << st.positions.len()) | st.finished as u128
    }
}

/// The visited set of a synchronized search: packed keys when the product
/// fits, whole configurations otherwise.
enum Visited {
    Packed(HashSet<u128>, Packer),
    General(HashSet<SyncState>),
}

impl Visited {
    fn new(db: &GraphDb, sims: &[MaskSim], relation: &RegularRelation) -> Self {
        match Packer::try_new(db, sims, relation) {
            Some(p) => Visited::Packed(HashSet::new(), p),
            None => Visited::General(HashSet::new()),
        }
    }

    fn insert(&mut self, st: &SyncState) -> bool {
        match self {
            Visited::Packed(set, packer) => set.insert(packer.pack(st)),
            Visited::General(set) => set.insert(st.clone()),
        }
    }

    /// Read-only membership test — shard workers use it to drop states
    /// discovered in earlier levels without cloning them into their
    /// private lists.
    fn contains(&self, st: &SyncState) -> bool {
        match self {
            Visited::Packed(set, packer) => set.contains(&packer.pack(st)),
            Visited::General(set) => set.contains(st),
        }
    }

    /// An empty per-level dedup set sharing this visited set's key scheme —
    /// the private structure each shard worker fills before the barrier
    /// merge.
    fn level_seen(&self) -> LevelSeen<'_> {
        match self {
            Visited::Packed(_, packer) => LevelSeen::Packed(HashSet::new(), packer),
            Visited::General(_) => LevelSeen::General(HashSet::new()),
        }
    }
}

/// A shard worker's private discovery set for one level (same keying as the
/// global [`Visited`], merged serially at the level barrier).
enum LevelSeen<'p> {
    Packed(HashSet<u128>, &'p Packer),
    General(HashSet<SyncState>),
}

impl LevelSeen<'_> {
    fn insert(&mut self, st: &SyncState) -> bool {
        match self {
            LevelSeen::Packed(set, packer) => set.insert(packer.pack(st)),
            LevelSeen::General(set) => set.insert(st.clone()),
        }
    }
}

/// The synchronized product searcher.
pub struct SyncSearch<'a> {
    db: &'a GraphDb,
    spec: &'a SyncSpec,
    dir: Direction,
    /// Bitmask simulation tables, one per walker.
    sims: Vec<MaskSim>,
    /// Word offset of walker `i`'s mask inside `SyncState::statesets`.
    offsets: Vec<usize>,
    total_words: usize,
    cfg: FrontierConfig,
    gov: &'a Governor,
}

impl<'a> SyncSearch<'a> {
    fn new(db: &'a GraphDb, spec: &'a SyncSpec, dir: Direction) -> Self {
        let sims: Vec<MaskSim> = spec.nfas.iter().map(MaskSim::new).collect();
        let mut offsets = Vec::with_capacity(sims.len());
        let mut total_words = 0;
        for sim in &sims {
            offsets.push(total_words);
            total_words += sim.words();
        }
        Self {
            db,
            spec,
            dir,
            sims,
            offsets,
            total_words,
            cfg: FrontierConfig::auto()
                .with_serial_threshold(FrontierConfig::SYNC_SERIAL_THRESHOLD),
            gov: Governor::disabled(),
        }
    }

    /// Overrides the frontier-engine knobs (thread count / serial
    /// threshold) for this search.
    pub fn with_config(mut self, cfg: FrontierConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Runs the search under a [`Governor`]: the level loop checkpoints
    /// with fuel proportional to each level, sharded workers observe the
    /// abort flag and drain, and an aborted run returns the (sound,
    /// partial) tuples settled so far — for a membership check that means
    /// "not found", an under-approximation.
    pub fn with_governor(mut self, gov: &'a Governor) -> Self {
        self.gov = gov;
        self
    }

    /// Forward search over `db`.
    pub fn forward(db: &'a GraphDb, spec: &'a SyncSpec) -> Self {
        Self::new(db, spec, Direction::Forward)
    }

    /// Backward search (pass a [`SyncSpec::reversed`] spec).
    pub fn backward(db: &'a GraphDb, reversed_spec: &'a SyncSpec) -> Self {
        Self::new(db, reversed_spec, Direction::Backward)
    }

    pub(crate) fn spec(&self) -> &SyncSpec {
        self.spec
    }

    /// Walker `i`'s mask inside `statesets`.
    #[inline]
    fn mask_of<'s>(&self, st: &'s SyncState, i: usize) -> &'s [u64] {
        &st.statesets[self.offsets[i]..self.offsets[i] + self.sims[i].words()]
    }

    /// Merged `a`-labelled run of `p`'s row in search direction.
    fn adj_with(&self, p: NodeId, a: Symbol) -> cxrpq_graph::EdgeRun<'a> {
        match self.dir {
            Direction::Forward => self.db.successors_with(p, a),
            Direction::Backward => self.db.predecessors_with(p, a),
        }
    }

    /// Maximal equal-label runs of `p`'s row in search direction.
    fn label_runs(&self, p: NodeId) -> cxrpq_graph::LabelRuns<'a> {
        match self.dir {
            Direction::Forward => self.db.out_label_runs(p),
            Direction::Backward => self.db.in_label_runs(p),
        }
    }

    pub(crate) fn initial(&self, starts: &[NodeId]) -> SyncState {
        let mut statesets = Vec::with_capacity(self.total_words);
        for sim in &self.sims {
            statesets.extend_from_slice(sim.start_mask());
        }
        SyncState {
            positions: starts.to_vec(),
            finished: 0,
            statesets,
            rstate: self.spec.relation.start(),
        }
    }

    pub(crate) fn accepting(&self, st: &SyncState) -> bool {
        if !self.spec.relation.is_final(st.rstate) {
            return false;
        }
        (0..self.spec.arity())
            .all(|i| st.finished & (1 << i) != 0 || self.sims[i].any_final(self.mask_of(st, i)))
    }

    /// All end-position tuples reachable from `starts` under the spec.
    ///
    /// When `ends` is given, the search prunes frozen walkers against it and
    /// stops at the first hit (membership check).
    ///
    /// The walk is level-synchronous; levels above the configured threshold
    /// (see [`SyncSearch::with_config`]) are sharded across scoped worker
    /// threads, with per-worker dedup sets merged into the global visited
    /// set at each level barrier. The result is identical for every thread
    /// count.
    pub fn run(
        &self,
        starts: &[NodeId],
        ends: Option<&[NodeId]>,
        stats: Option<&ReachStats>,
    ) -> HashSet<Vec<NodeId>> {
        let s = self.spec.arity();
        assert_eq!(starts.len(), s);
        assert!(s <= 64, "at most 64 synchronized walkers");
        let init = self.initial(starts);
        let mut out = HashSet::new();
        let mut visited = Visited::new(self.db, &self.sims, &self.spec.relation);
        visited.insert(&init);
        let mut level = vec![init];
        while !level.is_empty() {
            if !self.gov.checkpoint_n(level.len() as u64) {
                return out; // drain: partial tuples are a sound subset
            }
            for st in &level {
                if let Some(stats) = stats {
                    stats.bump(1);
                }
                if self.accepting(st) {
                    match ends {
                        Some(e) => {
                            if st.positions == e {
                                out.insert(st.positions.clone());
                                return out;
                            }
                        }
                        None => {
                            out.insert(st.positions.clone());
                        }
                    }
                }
            }
            let shards = self.cfg.shards_for(level.len());
            let mut next: Vec<SyncState> = Vec::new();
            if shards <= 1 {
                // Serial fast path: dedup directly against the global
                // visited set, exactly like the pre-level-synchronous
                // queue walk (no per-level shadow set, no re-cloning).
                for st in &level {
                    if self.gov.is_aborted() {
                        break;
                    }
                    self.expand_moves(st, ends, &mut |nxt, _| {
                        if visited.insert(&nxt) {
                            next.push(nxt);
                        }
                    });
                }
            } else {
                let discovered = expand_sharded_governed(
                    &level,
                    shards,
                    self.cfg.pool(),
                    self.gov,
                    |_, slice| {
                        let mut seen = visited.level_seen();
                        let mut found: Vec<SyncState> = Vec::new();
                        for (i, st) in slice.iter().enumerate() {
                            if i & 15 == 0 && self.gov.is_aborted() {
                                break; // worker observes the flag and drains
                            }
                            self.expand_moves(st, ends, &mut |nxt, _| {
                                // Read-only pre-filter against earlier levels,
                                // then private intra-level dedup.
                                if !visited.contains(&nxt) && seen.insert(&nxt) {
                                    found.push(nxt);
                                }
                            });
                        }
                        found
                    },
                );
                // Level barrier: global dedup (and cross-worker dedup)
                // builds the next level.
                for found in discovered {
                    for st in found {
                        if visited.insert(&st) {
                            next.push(st);
                        }
                    }
                }
            }
            level = next;
        }
        out
    }

    /// Expands a configuration, reporting each successor together with the
    /// per-walker symbol consumed (`None` = the walker padded / stayed
    /// frozen) — the information the witness extractor needs to reconstruct
    /// paths.
    pub(crate) fn expand_moves(
        &self,
        st: &SyncState,
        ends: Option<&[NodeId]>,
        emit: &mut impl FnMut(SyncState, &[Option<Symbol>]),
    ) {
        let s = self.spec.arity();
        let rel = &self.spec.relation;
        for (label, rnext) in rel.transitions(st.rstate) {
            match label {
                RelLabel::AllEqualSym => {
                    if st.finished != 0 {
                        continue; // all components must read a symbol
                    }
                    // Degenerate arity 0: no walker can read a symbol, so
                    // the label contributes no successors.
                    let Some(&p0) = st.positions.first() else {
                        continue;
                    };
                    // Candidate symbols: walker 0's distinct labels (the
                    // merged label runs across both storage layers), kept
                    // only when every other walker has a matching run.
                    'sym: for (a, run0) in self.label_runs(p0) {
                        let mut succs: Vec<cxrpq_graph::EdgeRun<'a>> = Vec::with_capacity(s);
                        succs.push(run0);
                        for i in 1..s {
                            let range = self.adj_with(st.positions[i], a);
                            if range.is_empty() {
                                continue 'sym;
                            }
                            succs.push(range);
                        }
                        // Step every walker's mask on the shared symbol.
                        let mut next_states = vec![0u64; self.total_words];
                        let mut dead = false;
                        for i in 0..s {
                            let (lo, hi) =
                                (self.offsets[i], self.offsets[i] + self.sims[i].words());
                            if !self.sims[i].step_into(
                                self.mask_of(st, i),
                                a,
                                &mut next_states[lo..hi],
                            ) {
                                dead = true;
                                break;
                            }
                        }
                        if dead {
                            continue;
                        }
                        self.emit_combos(&succs, &next_states, st.finished, *rnext, a, emit);
                    }
                }
                RelLabel::Tuple(comps) => {
                    // Build per-walker move options.
                    //   Pad: freeze (must be finishable), position unchanged.
                    //   Sym/Any: advance on a compatible edge.
                    // The stepped mask depends only on (walker, symbol), so
                    // options over the same label run share one Rc'd mask
                    // instead of cloning it per adjacent edge.
                    type Opt = (NodeId, std::rc::Rc<[u64]>, bool, Option<Symbol>);
                    let mut per_walker: Vec<Vec<Opt>> = Vec::with_capacity(s);
                    let mut dead = false;
                    for i in 0..s {
                        let already = st.finished & (1 << i) != 0;
                        let cur = self.mask_of(st, i);
                        let mut opts: Vec<Opt> = Vec::new();
                        match comps[i] {
                            TupComp::Pad => {
                                if already {
                                    opts.push((st.positions[i], cur.into(), true, None));
                                } else {
                                    match self.dir {
                                        // Left-to-right reading pads after
                                        // the word *ends*: freeze, and the
                                        // frozen mask must accept. With a
                                        // known end, prune.
                                        Direction::Forward => {
                                            if self.sims[i].any_final(cur)
                                                && ends
                                                    .map(|e| e[i] == st.positions[i])
                                                    .unwrap_or(true)
                                            {
                                                opts.push((
                                                    st.positions[i],
                                                    cur.into(),
                                                    true,
                                                    None,
                                                ));
                                            }
                                        }
                                        // Right-to-left reading pads before
                                        // the word *starts* (reversal moves
                                        // padding to the front): stay put,
                                        // unfrozen, and begin reading on a
                                        // later level.
                                        Direction::Backward => {
                                            opts.push((st.positions[i], cur.into(), false, None));
                                        }
                                    }
                                }
                            }
                            TupComp::Sym(a) => {
                                if !already {
                                    let ns = self.sims[i].step(cur, a);
                                    if ns.iter().any(|&b| b != 0) {
                                        let ns: std::rc::Rc<[u64]> = ns.into();
                                        for (_, v) in self.adj_with(st.positions[i], a) {
                                            opts.push((v, ns.clone(), false, Some(a)));
                                        }
                                    }
                                }
                            }
                            TupComp::Any => {
                                if !already {
                                    for (b, run) in self.label_runs(st.positions[i]) {
                                        let ns = self.sims[i].step(cur, b);
                                        if ns.iter().any(|&x| x != 0) {
                                            let ns: std::rc::Rc<[u64]> = ns.into();
                                            for (_, v) in run {
                                                opts.push((v, ns.clone(), false, Some(b)));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        if opts.is_empty() {
                            dead = true;
                            break;
                        }
                        per_walker.push(opts);
                    }
                    if dead {
                        continue;
                    }
                    // Cartesian combination.
                    let mut combo: Vec<usize> = vec![0; s];
                    loop {
                        let mut positions = Vec::with_capacity(s);
                        let mut statesets = Vec::with_capacity(self.total_words);
                        let mut moves = Vec::with_capacity(s);
                        let mut finished = 0u64;
                        for i in 0..s {
                            let (p, ss, fin, mv) = &per_walker[i][combo[i]];
                            positions.push(*p);
                            statesets.extend_from_slice(ss);
                            moves.push(*mv);
                            if *fin {
                                finished |= 1 << i;
                            }
                        }
                        emit(
                            SyncState {
                                positions,
                                finished,
                                statesets,
                                rstate: *rnext,
                            },
                            &moves,
                        );
                        if !advance_odometer(&mut combo, |k| per_walker[k].len()) {
                            break;
                        }
                    }
                }
            }
        }
    }

    fn emit_combos(
        &self,
        succs: &[cxrpq_graph::EdgeRun<'_>],
        next_states: &[u64],
        finished: u64,
        rnext: u32,
        shared_sym: Symbol,
        emit: &mut impl FnMut(SyncState, &[Option<Symbol>]),
    ) {
        let s = succs.len();
        if succs.iter().any(|r| r.is_empty()) {
            return;
        }
        let moves: Vec<Option<Symbol>> = vec![Some(shared_sym); s];
        let mut combo = vec![0usize; s];
        loop {
            let positions: Vec<NodeId> = (0..s).map(|i| succs[i].get(combo[i]).1).collect();
            emit(
                SyncState {
                    positions,
                    finished,
                    statesets: next_states.to_vec(),
                    rstate: rnext,
                },
                &moves,
            );
            if !advance_odometer(&mut combo, |k| succs[k].len()) {
                break;
            }
        }
    }
}

/// Advances a mixed-radix counter; `false` once every combination has been
/// produced.
fn advance_odometer(combo: &mut [usize], radix: impl Fn(usize) -> usize) -> bool {
    for k in (0..combo.len()).rev() {
        combo[k] += 1;
        if combo[k] < radix(k) {
            return true;
        }
        combo[k] = 0;
    }
    false
}

/// Convenience: end tuples reachable from `starts` (forward).
pub fn sync_targets(
    db: &GraphDb,
    spec: &SyncSpec,
    starts: &[NodeId],
    stats: Option<&ReachStats>,
) -> HashSet<Vec<NodeId>> {
    SyncSearch::forward(db, spec).run(starts, None, stats)
}

/// Convenience: start tuples that reach `ends` (backward on a reversed spec).
pub fn sync_sources(
    db: &GraphDb,
    reversed_spec: &SyncSpec,
    ends: &[NodeId],
    stats: Option<&ReachStats>,
) -> HashSet<Vec<NodeId>> {
    SyncSearch::backward(db, reversed_spec).run(ends, None, stats)
}

/// Convenience: does some tuple of identically-constrained paths connect
/// `starts` to `ends`?
pub fn sync_check(
    db: &GraphDb,
    spec: &SyncSpec,
    starts: &[NodeId],
    ends: &[NodeId],
    stats: Option<&ReachStats>,
) -> bool {
    !SyncSearch::forward(db, spec)
        .run(starts, Some(ends), stats)
        .is_empty()
}

/// [`sync_targets`] under a [`Governor`] (see
/// [`SyncSearch::with_governor`]).
pub fn sync_targets_governed(
    db: &GraphDb,
    spec: &SyncSpec,
    starts: &[NodeId],
    stats: Option<&ReachStats>,
    gov: &Governor,
) -> HashSet<Vec<NodeId>> {
    SyncSearch::forward(db, spec)
        .with_governor(gov)
        .run(starts, None, stats)
}

/// [`sync_sources`] under a [`Governor`] (see
/// [`SyncSearch::with_governor`]).
pub fn sync_sources_governed(
    db: &GraphDb,
    reversed_spec: &SyncSpec,
    ends: &[NodeId],
    stats: Option<&ReachStats>,
    gov: &Governor,
) -> HashSet<Vec<NodeId>> {
    SyncSearch::backward(db, reversed_spec)
        .with_governor(gov)
        .run(ends, None, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::{Alphabet, GraphBuilder};
    use std::sync::Arc;

    /// Two disjoint labelled paths from fresh sources to fresh sinks.
    fn two_path_db(w1: &str, w2: &str) -> (GraphDb, [NodeId; 4]) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let s1 = db.add_node();
        let t1 = db.add_node();
        let s2 = db.add_node();
        let t2 = db.add_node();
        let p1 = db.alphabet().parse_word(w1).unwrap();
        let p2 = db.alphabet().parse_word(w2).unwrap();
        db.add_word_path(s1, &p1, t1);
        db.add_word_path(s2, &p2, t2);
        (db.freeze(), [s1, t1, s2, t2])
    }

    /// Label-oblivious BFS distance, `None` when unreachable — robust on
    /// dead-end nodes and branching graphs, unlike chasing `out_edges[0]`.
    fn bfs_distance(db: &GraphDb, from: NodeId, to: NodeId) -> Option<usize> {
        let mut dist = vec![usize::MAX; db.node_count()];
        let mut queue = std::collections::VecDeque::from([from]);
        dist[from.index()] = 0;
        while let Some(n) = queue.pop_front() {
            if n == to {
                return Some(dist[n.index()]);
            }
            for (_, t) in db.out_edges(n) {
                if dist[t.index()] == usize::MAX {
                    dist[t.index()] = dist[n.index()] + 1;
                    queue.push_back(t);
                }
            }
        }
        None
    }

    #[test]
    fn equality_group_requires_equal_words() {
        let (db, [s1, t1, s2, t2]) = two_path_db("abc", "abc");
        let spec = SyncSpec::equality_group(None, 2);
        assert!(sync_check(&db, &spec, &[s1, s2], &[t1, t2], None));
        let (db2, [s1, t1, s2, t2]) = two_path_db("abc", "abb");
        assert!(!sync_check(&db2, &spec, &[s1, s2], &[t1, t2], None));
        // Equal prefixes of different length do not connect the sinks.
        let (db3, [s1, t1, s2, t2]) = two_path_db("ab", "abc");
        assert!(!sync_check(&db3, &spec, &[s1, s2], &[t1, t2], None));
    }

    #[test]
    fn definition_constrains_the_shared_word() {
        let (db, [s1, t1, s2, t2]) = two_path_db("aab", "aab");
        let mut alpha = db.alphabet().clone();
        let good = Nfa::from_regex(&parse_regex("a*b", &mut alpha).unwrap());
        let bad = Nfa::from_regex(&parse_regex("b+", &mut alpha).unwrap());
        let spec_good = SyncSpec::equality_group(Some(good), 2);
        let spec_bad = SyncSpec::equality_group(Some(bad), 2);
        assert!(sync_check(&db, &spec_good, &[s1, s2], &[t1, t2], None));
        assert!(!sync_check(&db, &spec_bad, &[s1, s2], &[t1, t2], None));
    }

    #[test]
    fn targets_enumerates_tuples() {
        let (db, [s1, _, s2, _]) = two_path_db("ab", "ab");
        let spec = SyncSpec::equality_group(None, 2);
        let tuples = sync_targets(&db, &spec, &[s1, s2], None);
        // Tuples after reading ε, a, ab — 3 synchronized frontier tuples.
        assert_eq!(tuples.len(), 3);
        assert!(tuples.contains(&vec![s1, s2]));
    }

    #[test]
    fn backward_sources_mirror_forward() {
        let (db, [s1, t1, s2, t2]) = two_path_db("abc", "abc");
        let spec = SyncSpec::equality_group(None, 2);
        let rev = spec.reversed();
        let sources = sync_sources(&db, &rev, &[t1, t2], None);
        assert!(sources.contains(&vec![s1, s2]));
        // And prefix-aligned interior tuples, but never mixed-offset ones:
        // both walkers must sit at the same BFS distance from their sinks.
        for tup in &sources {
            let d0 = bfs_distance(&db, tup[0], t1).expect("walker 0 reaches its sink");
            let d1 = bfs_distance(&db, tup[1], t2).expect("walker 1 reaches its sink");
            assert_eq!(d0, d1, "mixed-offset tuple {tup:?}");
        }
    }

    #[test]
    fn single_walker_reduces_to_reachability() {
        let (db, [s1, t1, _, _]) = two_path_db("abc", "c");
        let mut alpha = db.alphabet().clone();
        let m = Nfa::from_regex(&parse_regex("abc", &mut alpha).unwrap());
        let spec = SyncSpec {
            nfas: vec![m],
            relation: RegularRelation::equal_length(1),
        };
        assert!(sync_check(&db, &spec, &[s1], &[t1], None));
    }

    #[test]
    fn prefix_relation_group() {
        // Walker 1's word must be a prefix of walker 2's word.
        let (db, [s1, t1, s2, t2]) = two_path_db("ab", "abca");
        let spec = SyncSpec {
            nfas: vec![sigma_star_nfa(), sigma_star_nfa()],
            relation: RegularRelation::prefix(),
        };
        assert!(sync_check(&db, &spec, &[s1, s2], &[t1, t2], None));
        let (db2, [s1, t1, s2, t2]) = two_path_db("ba", "abca");
        assert!(!sync_check(&db2, &spec, &[s1, s2], &[t1, t2], None));
    }

    #[test]
    fn epsilon_tuple_accepts_in_place() {
        let (db, [s1, _, s2, _]) = two_path_db("a", "a");
        let spec = SyncSpec::equality_group(None, 2);
        assert!(sync_check(&db, &spec, &[s1, s2], &[s1, s2], None));
    }

    #[test]
    fn three_walker_equality_on_branching_graph() {
        // A diamond: s -a-> m1 -b-> t ; s -a-> m2 -c-> t. Three walkers from
        // s must all pick the same labels.
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let a = db.alphabet().sym("a");
        let b = db.alphabet().sym("b");
        let c = db.alphabet().sym("c");
        let s = db.add_node();
        let m1 = db.add_node();
        let m2 = db.add_node();
        let t = db.add_node();
        db.add_edge(s, a, m1);
        db.add_edge(s, a, m2);
        db.add_edge(m1, b, t);
        db.add_edge(m2, c, t);
        let db = db.freeze();
        let spec = SyncSpec::equality_group(None, 3);
        let tuples = sync_targets(&db, &spec, &[s, s, s], None);
        // Walkers can diverge in position (m1 vs m2 after 'a') but words stay
        // equal; all-at-t requires ab/ab/ab or ac/ac/ac — both fine.
        assert!(tuples.contains(&vec![t, t, t]));
        assert!(tuples.contains(&vec![m1, m2, m1]));
    }

    #[test]
    fn arity_zero_spec_is_degenerate_not_panicking() {
        // An empty equality group has one configuration (the empty tuple),
        // which the empty relation accepts immediately.
        let (db, _) = two_path_db("a", "a");
        let spec = SyncSpec::equality_group(None, 0);
        let tuples = sync_targets(&db, &spec, &[], None);
        assert_eq!(tuples, HashSet::from([vec![]]));
    }

    #[test]
    fn forced_parallel_levels_match_serial() {
        // Force sharding on every level (threshold 0, 4 workers): the
        // tuple sets must match the serial search exactly, with and
        // without a known end.
        let (db, [s1, t1, s2, t2]) = two_path_db("abcabc", "abcabc");
        let mut alpha = db.alphabet().clone();
        let def = Nfa::from_regex(&parse_regex("(a|b|c)+", &mut alpha).unwrap());
        let spec = SyncSpec::equality_group(Some(def), 2);
        let parallel = FrontierConfig::with_threads(4).with_serial_threshold(0);
        let serial_tuples = SyncSearch::forward(&db, &spec)
            .with_config(FrontierConfig::serial())
            .run(&[s1, s2], None, None);
        let parallel_tuples =
            SyncSearch::forward(&db, &spec)
                .with_config(parallel)
                .run(&[s1, s2], None, None);
        assert_eq!(serial_tuples, parallel_tuples);
        assert!(parallel_tuples.contains(&vec![t1, t2]));
        let hit = SyncSearch::forward(&db, &spec).with_config(parallel).run(
            &[s1, s2],
            Some(&[t1, t2]),
            None,
        );
        assert_eq!(hit, HashSet::from([vec![t1, t2]]));
    }

    #[test]
    fn packed_and_general_visited_agree() {
        // A definition NFA with > 64 Thompson states forces the general
        // (unpacked) visited representation; results must match the packed
        // run of an equivalent small automaton.
        let (db, [s1, t1, s2, t2]) = two_path_db("abcabc", "abcabc");
        let mut alpha = db.alphabet().clone();
        let small = Nfa::from_regex(&parse_regex("(abc)+", &mut alpha).unwrap());
        // Same language, inflated state count (> 64 states ⇒ 2 mask words):
        // a redundant union of many copies of the same automaton.
        let big = Nfa::union(&vec![small.clone(); 10]);
        assert!(big.state_count() > 64, "need a multi-word mask");
        let spec_small = SyncSpec::equality_group(Some(small), 2);
        let spec_big = SyncSpec::equality_group(Some(big), 2);
        let a = sync_targets(&db, &spec_small, &[s1, s2], None);
        let b = sync_targets(&db, &spec_big, &[s1, s2], None);
        assert_eq!(a, b);
        assert!(a.contains(&vec![t1, t2]));
    }

    #[test]
    fn backward_walk_handles_padded_relations() {
        // Prefix relation over words of different lengths: reversal moves
        // the padding to the *front* of the tuple word, so the backward
        // walk must let the shorter walker idle unfrozen before it starts
        // reading — freezing it (forward Pad semantics) loses the answer.
        let (db, [s1, t1, s2, t2]) = two_path_db("ab", "abba");
        let mut alpha = db.alphabet().clone();
        let sigma = |a: &mut _| Nfa::from_regex(&parse_regex("(a|b)+", a).unwrap());
        let spec = SyncSpec {
            nfas: vec![sigma(&mut alpha), sigma(&mut alpha)],
            relation: RegularRelation::prefix(),
        };
        let fwd = sync_targets(&db, &spec, &[s1, s2], None);
        assert!(fwd.contains(&vec![t1, t2]), "ab prefix of abba (forward)");
        let bwd = sync_sources(&db, &spec.reversed(), &[t1, t2], None);
        assert!(bwd.contains(&vec![s1, s2]), "ab prefix of abba (backward)");
        // And the non-prefix direction stays rejected both ways.
        let fwd_rev = sync_targets(&db, &spec, &[s2, s1], None);
        assert!(!fwd_rev.contains(&vec![t2, t1]));
        let bwd_rev = sync_sources(&db, &spec.reversed(), &[t2, t1], None);
        assert!(!bwd_rev.contains(&vec![s2, s1]));
    }
}
