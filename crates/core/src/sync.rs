//! Synchronized multi-walker product search.
//!
//! This is the algorithmic heart of both the Lemma 3 evaluator (simple
//! CXRPQs: all edges of a variable group must be labelled by the *same*
//! word, i.e. an equality relation whose definition edge additionally
//! satisfies a regular constraint) and the ECRPQ evaluator (arbitrary
//! regular relations over tuples of paths).
//!
//! A [`SyncSpec`] bundles one NFA per walker plus a [`RegularRelation`] over
//! the walkers' words. The search explores the product
//! `V^s × 2^{Q₁} × … × 2^{Q_s} × Q_rel × 2^s` (positions, per-walker NFA
//! state sets, relation state, finished mask) on the fly — the explicit form
//! of the `G_{q′,D}` graph in the proof of Lemma 3, which underlies the
//! `O(|q| log |D|)` nondeterministic space bound.

use crate::reach::{reverse_nfa, Direction, ReachStats};
use crate::relation::{RegularRelation, RelLabel, TupComp};
use cxrpq_automata::Nfa;
use cxrpq_graph::{GraphDb, NodeId, Symbol};
use std::collections::{HashMap, HashSet, VecDeque};

/// A synchronized group: per-walker automata plus a relation over their
/// words.
#[derive(Clone, Debug)]
pub struct SyncSpec {
    /// One automaton per walker (walker `i`'s path label must be accepted).
    pub nfas: Vec<Nfa>,
    /// The relation constraining the tuple of path labels.
    pub relation: RegularRelation,
}

impl SyncSpec {
    /// A spec requiring all walkers to read the same word, with walker 0
    /// additionally constrained by `def_nfa` (the CXRPQ variable-group
    /// shape: one definition edge + references).
    pub fn equality_group(def_nfa: Option<Nfa>, arity: usize) -> Self {
        let mut nfas = Vec::with_capacity(arity);
        for i in 0..arity {
            match (&def_nfa, i) {
                (Some(m), 0) => nfas.push(m.clone()),
                _ => nfas.push(sigma_star_nfa()),
            }
        }
        Self {
            nfas,
            relation: RegularRelation::equality(arity),
        }
    }

    /// Arity (number of walkers).
    pub fn arity(&self) -> usize {
        self.nfas.len()
    }

    /// The reversed spec, for backward search.
    pub fn reversed(&self) -> Self {
        Self {
            nfas: self.nfas.iter().map(reverse_nfa).collect(),
            relation: self.relation.reversed(),
        }
    }
}

/// A 2-state automaton for Σ*.
pub fn sigma_star_nfa() -> Nfa {
    let mut m = Nfa::with_states(1);
    m.add_transition(
        cxrpq_automata::StateId(0),
        cxrpq_automata::Label::Any,
        cxrpq_automata::StateId(0),
    );
    m.set_final(cxrpq_automata::StateId(0), true);
    m
}

/// One configuration of the synchronized product (crate-internal: the
/// witness extractor re-runs the search with parent tracking).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct SyncState {
    pub(crate) positions: Vec<NodeId>,
    pub(crate) finished: u64,
    pub(crate) statesets: Vec<Vec<bool>>,
    pub(crate) rstate: u32,
}

/// The synchronized product searcher.
pub struct SyncSearch<'a> {
    db: &'a GraphDb,
    spec: &'a SyncSpec,
    dir: Direction,
}

impl<'a> SyncSearch<'a> {
    /// Forward search over `db`.
    pub fn forward(db: &'a GraphDb, spec: &'a SyncSpec) -> Self {
        Self {
            db,
            spec,
            dir: Direction::Forward,
        }
    }

    /// Backward search (pass a [`SyncSpec::reversed`] spec).
    pub fn backward(db: &'a GraphDb, reversed_spec: &'a SyncSpec) -> Self {
        Self {
            db,
            spec: reversed_spec,
            dir: Direction::Backward,
        }
    }

    pub(crate) fn spec(&self) -> &SyncSpec {
        self.spec
    }

    fn adj(&self, p: NodeId) -> &[(Symbol, NodeId)] {
        match self.dir {
            Direction::Forward => self.db.out_edges(p),
            Direction::Backward => self.db.in_edges(p),
        }
    }

    pub(crate) fn initial(&self, starts: &[NodeId]) -> SyncState {
        SyncState {
            positions: starts.to_vec(),
            finished: 0,
            statesets: self.spec.nfas.iter().map(Nfa::start_set).collect(),
            rstate: self.spec.relation.start(),
        }
    }

    pub(crate) fn accepting(&self, st: &SyncState) -> bool {
        if !self.spec.relation.is_final(st.rstate) {
            return false;
        }
        (0..self.spec.arity()).all(|i| {
            st.finished & (1 << i) != 0 || self.spec.nfas[i].any_final(&st.statesets[i])
        })
    }

    /// All end-position tuples reachable from `starts` under the spec.
    ///
    /// When `ends` is given, the search prunes frozen walkers against it and
    /// stops at the first hit (membership check).
    pub fn run(
        &self,
        starts: &[NodeId],
        ends: Option<&[NodeId]>,
        stats: Option<&ReachStats>,
    ) -> HashSet<Vec<NodeId>> {
        let s = self.spec.arity();
        assert_eq!(starts.len(), s);
        assert!(s <= 64, "at most 64 synchronized walkers");
        let init = self.initial(starts);
        let mut out = HashSet::new();
        let mut visited: HashSet<SyncState> = HashSet::new();
        let mut queue = VecDeque::new();
        visited.insert(init.clone());
        queue.push_back(init);
        while let Some(st) = queue.pop_front() {
            if let Some(stats) = stats {
                stats.bump(1);
            }
            if self.accepting(&st) {
                match ends {
                    Some(e) => {
                        if st.positions == e {
                            out.insert(st.positions.clone());
                            return out;
                        }
                    }
                    None => {
                        out.insert(st.positions.clone());
                    }
                }
            }
            self.expand(&st, ends, &mut |next| {
                if visited.insert(next.clone()) {
                    queue.push_back(next);
                }
            });
        }
        out
    }

    fn expand(&self, st: &SyncState, ends: Option<&[NodeId]>, emit: &mut impl FnMut(SyncState)) {
        self.expand_moves(st, ends, &mut |next, _| emit(next));
    }

    /// Like `expand`, but also reports the per-walker symbol consumed by
    /// each successor (`None` = the walker padded / stayed frozen) — the
    /// information the witness extractor needs to reconstruct paths.
    pub(crate) fn expand_moves(
        &self,
        st: &SyncState,
        ends: Option<&[NodeId]>,
        emit: &mut impl FnMut(SyncState, &[Option<Symbol>]),
    ) {
        let s = self.spec.arity();
        let rel = &self.spec.relation;
        for (label, rnext) in rel.transitions(st.rstate) {
            match label {
                RelLabel::AllEqualSym => {
                    if st.finished != 0 {
                        continue; // all components must read a symbol
                    }
                    // Candidate symbols: available from every walker.
                    let mut syms: Option<HashSet<Symbol>> = None;
                    for i in 0..s {
                        let here: HashSet<Symbol> =
                            self.adj(st.positions[i]).iter().map(|&(a, _)| a).collect();
                        syms = Some(match syms {
                            None => here,
                            Some(acc) => acc.intersection(&here).copied().collect(),
                        });
                        if syms.as_ref().unwrap().is_empty() {
                            break;
                        }
                    }
                    for a in syms.unwrap_or_default() {
                        // Per-walker: next NFA set and successor nodes.
                        let mut next_sets = Vec::with_capacity(s);
                        let mut succs: Vec<Vec<NodeId>> = Vec::with_capacity(s);
                        let mut dead = false;
                        for i in 0..s {
                            let ns = self.spec.nfas[i].step(&st.statesets[i], a);
                            if ns.iter().all(|&b| !b) {
                                dead = true;
                                break;
                            }
                            next_sets.push(ns);
                            succs.push(
                                self.adj(st.positions[i])
                                    .iter()
                                    .filter(|&&(b, _)| b == a)
                                    .map(|&(_, v)| v)
                                    .collect(),
                            );
                        }
                        if dead {
                            continue;
                        }
                        self.emit_combos(st, &succs, &next_sets, st.finished, *rnext, a, emit);
                    }
                }
                RelLabel::Tuple(comps) => {
                    // Build per-walker move options.
                    //   Pad: freeze (must be finishable), position unchanged.
                    //   Sym/Any: advance on a compatible edge.
                    let mut per_walker: Vec<Vec<(NodeId, Vec<bool>, bool, Option<Symbol>)>> =
                        Vec::with_capacity(s);
                    let mut dead = false;
                    for i in 0..s {
                        let already = st.finished & (1 << i) != 0;
                        let mut opts: Vec<(NodeId, Vec<bool>, bool, Option<Symbol>)> = Vec::new();
                        match comps[i] {
                            TupComp::Pad => {
                                if already {
                                    opts.push((
                                        st.positions[i],
                                        st.statesets[i].clone(),
                                        true,
                                        None,
                                    ));
                                } else if self.spec.nfas[i].any_final(&st.statesets[i]) {
                                    // Freeze now; with a known end, prune.
                                    if ends.map(|e| e[i] == st.positions[i]).unwrap_or(true) {
                                        opts.push((
                                            st.positions[i],
                                            st.statesets[i].clone(),
                                            true,
                                            None,
                                        ));
                                    }
                                }
                            }
                            TupComp::Sym(a) => {
                                if !already {
                                    let ns = self.spec.nfas[i].step(&st.statesets[i], a);
                                    if ns.iter().any(|&b| b) {
                                        for &(b, v) in self.adj(st.positions[i]) {
                                            if b == a {
                                                opts.push((v, ns.clone(), false, Some(a)));
                                            }
                                        }
                                    }
                                }
                            }
                            TupComp::Any => {
                                if !already {
                                    let mut per_sym: HashMap<Symbol, Vec<bool>> = HashMap::new();
                                    for &(b, v) in self.adj(st.positions[i]) {
                                        let ns = per_sym.entry(b).or_insert_with(|| {
                                            self.spec.nfas[i].step(&st.statesets[i], b)
                                        });
                                        if ns.iter().any(|&x| x) {
                                            let ns = ns.clone();
                                            opts.push((v, ns, false, Some(b)));
                                        }
                                    }
                                }
                            }
                        }
                        if opts.is_empty() {
                            dead = true;
                            break;
                        }
                        per_walker.push(opts);
                    }
                    if dead {
                        continue;
                    }
                    // Cartesian combination.
                    let mut combo: Vec<usize> = vec![0; s];
                    loop {
                        let mut positions = Vec::with_capacity(s);
                        let mut statesets = Vec::with_capacity(s);
                        let mut moves = Vec::with_capacity(s);
                        let mut finished = 0u64;
                        for i in 0..s {
                            let (p, ss, fin, mv) = &per_walker[i][combo[i]];
                            positions.push(*p);
                            statesets.push(ss.clone());
                            moves.push(*mv);
                            if *fin {
                                finished |= 1 << i;
                            }
                        }
                        emit(
                            SyncState {
                                positions,
                                finished,
                                statesets,
                                rstate: *rnext,
                            },
                            &moves,
                        );
                        // Odometer.
                        let mut k = s;
                        loop {
                            if k == 0 {
                                break;
                            }
                            k -= 1;
                            combo[k] += 1;
                            if combo[k] < per_walker[k].len() {
                                break;
                            }
                            combo[k] = 0;
                            if k == 0 {
                                k = usize::MAX;
                                break;
                            }
                        }
                        if k == usize::MAX {
                            break;
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_combos(
        &self,
        st: &SyncState,
        succs: &[Vec<NodeId>],
        next_sets: &[Vec<bool>],
        finished: u64,
        rnext: u32,
        shared_sym: Symbol,
        emit: &mut impl FnMut(SyncState, &[Option<Symbol>]),
    ) {
        let s = succs.len();
        if succs.iter().any(Vec::is_empty) {
            return;
        }
        let moves: Vec<Option<Symbol>> = vec![Some(shared_sym); s];
        let mut combo = vec![0usize; s];
        loop {
            let positions: Vec<NodeId> = (0..s).map(|i| succs[i][combo[i]]).collect();
            emit(
                SyncState {
                    positions,
                    finished,
                    statesets: next_sets.to_vec(),
                    rstate: rnext,
                },
                &moves,
            );
            let mut k = s;
            loop {
                if k == 0 {
                    break;
                }
                k -= 1;
                combo[k] += 1;
                if combo[k] < succs[k].len() {
                    break;
                }
                combo[k] = 0;
                if k == 0 {
                    k = usize::MAX;
                    break;
                }
            }
            if k == usize::MAX {
                break;
            }
        }
        let _ = st;
    }
}

/// Convenience: end tuples reachable from `starts` (forward).
pub fn sync_targets(
    db: &GraphDb,
    spec: &SyncSpec,
    starts: &[NodeId],
    stats: Option<&ReachStats>,
) -> HashSet<Vec<NodeId>> {
    SyncSearch::forward(db, spec).run(starts, None, stats)
}

/// Convenience: start tuples that reach `ends` (backward on a reversed spec).
pub fn sync_sources(
    db: &GraphDb,
    reversed_spec: &SyncSpec,
    ends: &[NodeId],
    stats: Option<&ReachStats>,
) -> HashSet<Vec<NodeId>> {
    SyncSearch::backward(db, reversed_spec).run(ends, None, stats)
}

/// Convenience: does some tuple of identically-constrained paths connect
/// `starts` to `ends`?
pub fn sync_check(
    db: &GraphDb,
    spec: &SyncSpec,
    starts: &[NodeId],
    ends: &[NodeId],
    stats: Option<&ReachStats>,
) -> bool {
    !SyncSearch::forward(db, spec)
        .run(starts, Some(ends), stats)
        .is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::Alphabet;
    use std::sync::Arc;

    /// Two disjoint labelled paths from fresh sources to fresh sinks.
    fn two_path_db(w1: &str, w2: &str) -> (GraphDb, [NodeId; 4]) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphDb::new(alpha);
        let s1 = db.add_node();
        let t1 = db.add_node();
        let s2 = db.add_node();
        let t2 = db.add_node();
        let p1 = db.alphabet().parse_word(w1).unwrap();
        let p2 = db.alphabet().parse_word(w2).unwrap();
        db.add_word_path(s1, &p1, t1);
        db.add_word_path(s2, &p2, t2);
        (db, [s1, t1, s2, t2])
    }

    #[test]
    fn equality_group_requires_equal_words() {
        let (db, [s1, t1, s2, t2]) = two_path_db("abc", "abc");
        let spec = SyncSpec::equality_group(None, 2);
        assert!(sync_check(&db, &spec, &[s1, s2], &[t1, t2], None));
        let (db2, [s1, t1, s2, t2]) = two_path_db("abc", "abb");
        assert!(!sync_check(&db2, &spec, &[s1, s2], &[t1, t2], None));
        // Equal prefixes of different length do not connect the sinks.
        let (db3, [s1, t1, s2, t2]) = two_path_db("ab", "abc");
        assert!(!sync_check(&db3, &spec, &[s1, s2], &[t1, t2], None));
    }

    #[test]
    fn definition_constrains_the_shared_word() {
        let (db, [s1, t1, s2, t2]) = two_path_db("aab", "aab");
        let mut alpha = db.alphabet().clone();
        let good = Nfa::from_regex(&parse_regex("a*b", &mut alpha).unwrap());
        let bad = Nfa::from_regex(&parse_regex("b+", &mut alpha).unwrap());
        let spec_good = SyncSpec::equality_group(Some(good), 2);
        let spec_bad = SyncSpec::equality_group(Some(bad), 2);
        assert!(sync_check(&db, &spec_good, &[s1, s2], &[t1, t2], None));
        assert!(!sync_check(&db, &spec_bad, &[s1, s2], &[t1, t2], None));
    }

    #[test]
    fn targets_enumerates_tuples() {
        let (db, [s1, _, s2, _]) = two_path_db("ab", "ab");
        let spec = SyncSpec::equality_group(None, 2);
        let tuples = sync_targets(&db, &spec, &[s1, s2], None);
        // Tuples after reading ε, a, ab — 3 synchronized frontier tuples.
        assert_eq!(tuples.len(), 3);
        assert!(tuples.contains(&vec![s1, s2]));
    }

    #[test]
    fn backward_sources_mirror_forward() {
        let (db, [s1, t1, s2, t2]) = two_path_db("abc", "abc");
        let spec = SyncSpec::equality_group(None, 2);
        let rev = spec.reversed();
        let sources = sync_sources(&db, &rev, &[t1, t2], None);
        assert!(sources.contains(&vec![s1, s2]));
        // And prefix-aligned interior tuples, but never mixed-offset ones.
        for tup in &sources {
            // Both walkers must be at the same distance from their sinks.
            let d = |n: NodeId, t: NodeId, db: &GraphDb| {
                let mut cur = n;
                let mut steps = 0;
                while cur != t {
                    cur = db.out_edges(cur)[0].1;
                    steps += 1;
                }
                steps
            };
            assert_eq!(d(tup[0], t1, &db), d(tup[1], t2, &db));
        }
    }

    #[test]
    fn single_walker_reduces_to_reachability() {
        let (db, [s1, t1, _, _]) = two_path_db("abc", "c");
        let mut alpha = db.alphabet().clone();
        let m = Nfa::from_regex(&parse_regex("abc", &mut alpha).unwrap());
        let spec = SyncSpec {
            nfas: vec![m],
            relation: RegularRelation::equal_length(1),
        };
        assert!(sync_check(&db, &spec, &[s1], &[t1], None));
    }

    #[test]
    fn prefix_relation_group() {
        // Walker 1's word must be a prefix of walker 2's word.
        let (db, [s1, t1, s2, t2]) = two_path_db("ab", "abca");
        let spec = SyncSpec {
            nfas: vec![sigma_star_nfa(), sigma_star_nfa()],
            relation: RegularRelation::prefix(),
        };
        assert!(sync_check(&db, &spec, &[s1, s2], &[t1, t2], None));
        let (db2, [s1, t1, s2, t2]) = two_path_db("ba", "abca");
        assert!(!sync_check(&db2, &spec, &[s1, s2], &[t1, t2], None));
    }

    #[test]
    fn epsilon_tuple_accepts_in_place() {
        let (db, [s1, _, s2, _]) = two_path_db("a", "a");
        let spec = SyncSpec::equality_group(None, 2);
        assert!(sync_check(&db, &spec, &[s1, s2], &[s1, s2], None));
    }

    #[test]
    fn three_walker_equality_on_branching_graph() {
        // A diamond: s -a-> m1 -b-> t ; s -a-> m2 -c-> t. Three walkers from
        // s must all pick the same labels.
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphDb::new(alpha);
        let a = db.alphabet().sym("a");
        let b = db.alphabet().sym("b");
        let c = db.alphabet().sym("c");
        let s = db.add_node();
        let m1 = db.add_node();
        let m2 = db.add_node();
        let t = db.add_node();
        db.add_edge(s, a, m1);
        db.add_edge(s, a, m2);
        db.add_edge(m1, b, t);
        db.add_edge(m2, c, t);
        let spec = SyncSpec::equality_group(None, 3);
        let tuples = sync_targets(&db, &spec, &[s, s, s], None);
        // Walkers can diverge in position (m1 vs m2 after 'a') but words stay
        // equal; all-at-t requires ab/ab/ab or ac/ac/ac — both fine.
        assert!(tuples.contains(&vec![t, t, t]));
        assert!(tuples.contains(&vec![m1, m2, m1]));
    }
}
