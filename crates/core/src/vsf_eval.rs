//! Lemma 7: evaluation of `CXRPQ^{vsf}` (NL data complexity, Theorem 2).
//!
//! The proof's nondeterministic alternation-resolution is derandomized into
//! an enumeration: each combination of variable-simple branches (Step 1 /
//! Lemma 4), flattened per Lemma 6 into a *simple* conjunctive xregex, is
//! handed to the Lemma 3 engine; the query matches iff some combination
//! does. For flat-variable queries (`CXRPQ^{vsf,fl}`, Theorem 5) the
//! flattened choices stay polynomial (Lemma 8) — same code path, smaller
//! intermediate queries.

use crate::cxrpq::Cxrpq;
use crate::governor::Governor;
use crate::simple_eval::SimpleEvaluator;
use crate::solve::SolveOptions;
use crate::witness::QueryWitness;
use cxrpq_graph::{GraphDb, NodeId};
use cxrpq_xregex::normal_form::{simple_choices, NormalFormError};
use std::collections::BTreeSet;

/// The governor attached to `opts`, or the shared disabled one.
fn gov_of(opts: &SolveOptions) -> &Governor {
    opts.governor.as_deref().unwrap_or(Governor::disabled())
}

/// The `CXRPQ^{vsf}` engine.
pub struct VsfEvaluator<'q> {
    q: &'q Cxrpq,
}

impl<'q> VsfEvaluator<'q> {
    /// Creates the engine; errors unless every component is vstar-free.
    pub fn new(q: &'q Cxrpq) -> Result<Self, NormalFormError> {
        // Validate up front (simple_choices re-checks per call).
        let _ = simple_choices(q.conjunctive())?;
        Ok(Self { q })
    }

    /// Number of branch combinations the evaluator may explore.
    pub fn combination_count(&self) -> usize {
        simple_choices(self.q.conjunctive())
            .expect("validated at construction")
            .combination_count()
    }

    /// Boolean evaluation `D ⊨ q`, with early exit on the first matching
    /// branch combination.
    pub fn boolean(&self, db: &GraphDb) -> bool {
        self.boolean_opts(db, &SolveOptions::early_exit().projected())
    }

    /// [`VsfEvaluator::boolean`] under explicit solver options. A governor
    /// abort stops the branch-combination sweep (sound: `false` may stand
    /// for an unexplored `true`).
    pub fn boolean_opts(&self, db: &GraphDb, opts: &SolveOptions) -> bool {
        for choice in simple_choices(self.q.conjunctive()).expect("validated") {
            if gov_of(opts).is_aborted() {
                break;
            }
            let q2 = self.q.with_conjunctive(choice);
            let ev = SimpleEvaluator::new(&q2).expect("choices are simple");
            if ev.boolean_opts(db, opts).0 {
                return true;
            }
        }
        false
    }

    /// The answer relation `q(D)` — the union over branch combinations.
    pub fn answers(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        self.answers_opts(db, &SolveOptions::pipeline().projected())
    }

    /// [`VsfEvaluator::answers`] under explicit solver options. A governor
    /// abort truncates the union at a sound partial subset.
    pub fn answers_opts(&self, db: &GraphDb, opts: &SolveOptions) -> BTreeSet<Vec<NodeId>> {
        let mut out = BTreeSet::new();
        for choice in simple_choices(self.q.conjunctive()).expect("validated") {
            if gov_of(opts).is_aborted() {
                break;
            }
            let q2 = self.q.with_conjunctive(choice);
            let ev = SimpleEvaluator::new(&q2).expect("choices are simple");
            out.extend(ev.answers_opts(db, opts).0);
        }
        out
    }

    /// The Check problem `t̄ ∈ q(D)`.
    pub fn check(&self, db: &GraphDb, tuple: &[NodeId]) -> bool {
        self.check_opts(db, tuple, &SolveOptions::early_exit().projected())
    }

    /// [`VsfEvaluator::check`] under explicit solver options.
    pub fn check_opts(&self, db: &GraphDb, tuple: &[NodeId], opts: &SolveOptions) -> bool {
        for choice in simple_choices(self.q.conjunctive()).expect("validated") {
            if gov_of(opts).is_aborted() {
                break;
            }
            let q2 = self.q.with_conjunctive(choice);
            let ev = SimpleEvaluator::new(&q2).expect("choices are simple");
            if ev.check_opts(db, tuple, opts).0 {
                return true;
            }
        }
        false
    }

    /// A certificate for some matching morphism: the first simple branch
    /// combination with a match supplies the paths. Variable images refer to
    /// the *normalized* query's variables (Step 2/3 renaming).
    pub fn witness(&self, db: &GraphDb) -> Option<QueryWitness> {
        for choice in simple_choices(self.q.conjunctive()).expect("validated") {
            let q2 = self.q.with_conjunctive(choice);
            let ev = SimpleEvaluator::new(&q2).expect("choices are simple");
            if let Some(w) = ev.witness(db) {
                return Some(w);
            }
        }
        None
    }

    /// A certificate for `t̄ ∈ q(D)`.
    pub fn witness_for(&self, db: &GraphDb, tuple: &[NodeId]) -> Option<QueryWitness> {
        for choice in simple_choices(self.q.conjunctive()).expect("validated") {
            let q2 = self.q.with_conjunctive(choice);
            let ev = SimpleEvaluator::new(&q2).expect("choices are simple");
            if let Some(w) = ev.witness_for(db, tuple) {
                return Some(w);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cxrpq::CxrpqBuilder;
    use cxrpq_graph::GraphBuilder;
    use cxrpq_graph::{Alphabet, GraphDb};
    use std::sync::Arc;

    fn db_words(words: &[&str]) -> (GraphDb, Vec<(NodeId, NodeId)>) {
        let alpha = Arc::new(Alphabet::from_chars("abcd"));
        let mut db = GraphBuilder::new(alpha);
        let mut ends = Vec::new();
        for w in words {
            let s = db.add_node();
            let t = db.add_node();
            let word = db.alphabet().parse_word(w).unwrap();
            db.add_word_path(s, &word, t);
            ends.push((s, t));
        }
        (db.freeze(), ends)
    }

    #[test]
    fn figure_2_g2_triangle() {
        // G2: v1 -x{aa|b}-> v2, v2 -y{(c|d)*}-> v3, v3 -(x|y)-> v1.
        // Plant a triangle matching via the x-branch: aa / cd / aa.
        let alpha = Arc::new(Alphabet::from_chars("abcd"));
        let mut db = GraphBuilder::new(alpha);
        let v1 = db.add_node();
        let v2 = db.add_node();
        let v3 = db.add_node();
        let aa = db.alphabet().parse_word("aa").unwrap();
        let cd = db.alphabet().parse_word("cd").unwrap();
        db.add_word_path(v1, &aa, v2);
        db.add_word_path(v2, &cd, v3);
        db.add_word_path(v3, &aa, v1);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha2)
            .edge("v1", "x{aa|b}", "v2")
            .edge("v2", "y{(c|d)*}", "v3")
            .edge("v3", "x|y", "v1")
            .output(&["v1", "v2", "v3"])
            .build()
            .unwrap();
        let ev = VsfEvaluator::new(&q).unwrap();
        // x|y splits into 2 combinations.
        assert_eq!(ev.combination_count(), 2);
        assert!(ev.check(&db, &[v1, v2, v3]));
        // Break the return path: v3 -ba-> v1 matches neither x=aa nor y=cd.
        let alpha3 = Arc::new(Alphabet::from_chars("abcd"));
        let mut db2 = GraphBuilder::new(alpha3);
        let u1 = db2.add_node();
        let u2 = db2.add_node();
        let u3 = db2.add_node();
        let aa2 = db2.alphabet().parse_word("aa").unwrap();
        let cd2 = db2.alphabet().parse_word("cd").unwrap();
        let ba2 = db2.alphabet().parse_word("ba").unwrap();
        db2.add_word_path(u1, &aa2, u2);
        db2.add_word_path(u2, &cd2, u3);
        db2.add_word_path(u3, &ba2, u1);
        let db2 = db2.freeze();
        assert!(!ev.check(&db2, &[u1, u2, u3]));
    }

    #[test]
    fn return_via_y_branch() {
        // Same G2 query; triangle whose return path equals the y-word.
        let alpha = Arc::new(Alphabet::from_chars("abcd"));
        let mut db = GraphBuilder::new(alpha);
        let v1 = db.add_node();
        let v2 = db.add_node();
        let v3 = db.add_node();
        let b = db.alphabet().parse_word("b").unwrap();
        let ccd = db.alphabet().parse_word("ccd").unwrap();
        db.add_word_path(v1, &b, v2);
        db.add_word_path(v2, &ccd, v3);
        db.add_word_path(v3, &ccd, v1);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha2)
            .edge("v1", "x{aa|b}", "v2")
            .edge("v2", "y{(c|d)*}", "v3")
            .edge("v3", "x|y", "v1")
            .build()
            .unwrap();
        assert!(VsfEvaluator::new(&q).unwrap().boolean(&db));
    }

    #[test]
    fn agrees_with_bounded_on_small_instances() {
        use crate::bounded::BoundedEvaluator;
        let (db, _) = db_words(&["abab", "ab", "ba", "aabb"]);
        let mut alpha = db.alphabet().clone();
        // vstar-free query with a non-trivial alternation structure.
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{ab|ba}z", "y")
            .edge("u", "z|ab", "v")
            .build()
            .unwrap();
        let vsf = VsfEvaluator::new(&q).unwrap().boolean(&db);
        // Images here have length ≤ 2, so CXRPQ^{≤2} coincides.
        let bnd = BoundedEvaluator::new(&q, 2).boolean(&db);
        assert_eq!(vsf, bnd);
        assert!(vsf);
    }

    #[test]
    fn rejects_non_vstar_free() {
        let mut alpha = Alphabet::from_chars("ab");
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{a}(z|b)+", "y")
            .build()
            .unwrap();
        assert!(VsfEvaluator::new(&q).is_err());
    }

    #[test]
    fn nested_definitions_normalize() {
        // Figure 2 G4-style nesting: the flattening of Lemma 6 kicks in.
        let (db, ends) = db_words(&["acd", "c", "acd"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("p", "x{a y{c}d}", "q")
            .edge("r", "y", "s")
            .edge("t", "x", "w")
            .output(&["p", "q", "r", "s", "t", "w"])
            .build()
            .unwrap();
        let ev = VsfEvaluator::new(&q).unwrap();
        assert!(ev.check(
            &db,
            &[ends[0].0, ends[0].1, ends[1].0, ends[1].1, ends[2].0, ends[2].1]
        ));
        // y-path must be "c": a "d" path for r>s fails.
        let (db2, e2) = db_words(&["acd", "d", "acd"]);
        assert!(!ev.check(
            &db2,
            &[e2[0].0, e2[0].1, e2[1].0, e2[1].1, e2[2].0, e2[2].1]
        ));
    }
}
