//! Offline drop-in shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! this path crate instead of the real `criterion`. It implements the
//! surface the `crates/bench/benches/*` targets consume: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `warm_up_time`, `measurement_time`,
//! `bench_function`, `bench_with_input`, `finish`), [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is intentionally simple: one warm-up call, then `sample_size`
//! timed samples (bailing out early once 5× the configured measurement time
//! has elapsed), reporting min / median / max to stdout. No statistical
//! analysis, plots, or baseline storage — enough to compare orders of
//! magnitude and to keep every bench target compiling and runnable offline.

use std::time::{Duration, Instant};

/// Entry point handed to each registered bench function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line filtering is not
    /// implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be nonzero");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            budget: self.measurement_time * 5,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id.id);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        println!(
            "{}/{}: min {:?}  median {:?}  max {:?}  ({} samples)",
            self.name,
            id.id,
            sorted[0],
            sorted[sorted.len() / 2],
            sorted[sorted.len() - 1],
            sorted.len()
        );
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs and times the closure under benchmark.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Opaque-value helper matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles bench functions into one runner function named `$name`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(unreachable_pub)]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(unreachable_pub)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` invoking each group (bench targets use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 50u32), &50u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>());
        });
        group.bench_with_input(BenchmarkId::from_parameter("x"), &1, |b, _| {
            b.iter(|| 1 + 1);
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_api_run() {
        benches();
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            sample_size: 4,
            budget: Duration::from_secs(1),
            samples: Vec::new(),
        };
        b.iter(|| black_box(2 * 2));
        assert_eq!(b.samples.len(), 4);
    }
}
