//! Offline drop-in shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! this path crate instead of the real `proptest`. It implements the surface
//! the property-test suites consume:
//!
//! - the [`Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`
//! - integer-range strategies (`0u32..2`), [`strategy::Just`],
//!   [`collection::vec`] with `usize` size ranges
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros
//! - [`test_runner::ProptestConfig::with_cases`]
//!
//! Differences from the real crate, by design: inputs are generated from a
//! deterministic per-test RNG (seeded from the test name, overridable via
//! `PROPTEST_SEED`), and failing cases are reported with their inputs but
//! **not shrunk**. That trades minimal counterexamples for a dependency-free
//! build; the assertions and coverage are unchanged.

pub mod test_runner {
    /// Execution parameters for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property (carried via `Err` out of the test-case closure so
    /// the harness can report the generating inputs).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 — deterministic per test, so CI failures reproduce locally.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from the test name (FNV-1a), XORed with `PROPTEST_SEED` if
        /// set, so a failing run can be re-explored from another seed.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value-tree/shrinking layer: a
    /// strategy is just a sampler.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, map }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Bounded-depth recursive strategy: `depth` rounds of wrapping the
        /// current strategy with `recurse`, unioned 50/50 with the leaf at
        /// each level (the `desired_size`/`expected_branch_size` knobs of the
        /// real API are accepted and ignored).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                current = Union::new(vec![self.clone().boxed(), deeper]).boxed();
            }
            current
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    (lo as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                            l, r, format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Fail the current property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left != right)`\n  both: `{:?}`",
                            l
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
                            l, format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-definition macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases; a failing
/// case panics with the inputs that produced it (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0u32..5, 0..=4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..7, y in 0usize..=2) {
            prop_assert!((3..7).contains(&x));
            prop_assert!(y <= 2);
        }

        #[test]
        fn vec_sizes_respected(v in small_vec()) {
            prop_assert!(v.len() <= 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(0u32),
            (10u32..20).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 0 || (20..40).contains(&v), "unexpected {v}");
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf,
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf => 0,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn recursion_depth_bounded(t in Just(Tree::Leaf).prop_recursive(3, 24, 3, |inner| {
            crate::collection::vec(inner, 1..=3).prop_map(Tree::Node)
        })) {
            prop_assert!(depth(&t) <= 3, "depth {} for {:?}", depth(&t), t);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(x in 0u32..10) {
                    prop_assert_eq!(x, 12345u32, "forced failure");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("x = "), "missing inputs in: {msg}");
        assert!(msg.contains("forced failure"), "missing message in: {msg}");
    }
}
