//! Offline drop-in shim for the subset of `rand` 0.9 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! this path crate instead of the real `rand`. It implements exactly the
//! surface the repository consumes:
//!
//! - [`Rng::random_range`] over integer `Range` / `RangeInclusive`
//! - [`Rng::random_bool`]
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed, which is all the workloads and property tests rely on. The
//! `random_range` implementation uses modulo reduction; the bias is
//! irrelevant at the range sizes used here (≪ 2^32) and keeps the shim tiny.
//! Swapping the real crate back in later requires only editing
//! `[workspace.dependencies]`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range; panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform fraction bits, the precision of an f64 mantissa.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample (the `rand::distr` equivalent,
/// flattened to one trait since nothing here needs the full machinery).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

uint_sample_range!(u8, u16, u32, u64, usize);

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(2u32..=3);
            assert!((2..=3).contains(&y));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((600..1400).contains(&hits), "suspicious coin: {hits}/2000");
    }

    #[test]
    fn generic_over_unsized_rng() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.random_range(0..5u32)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample(&mut rng) < 5);
    }
}
