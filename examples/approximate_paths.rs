//! ECRPQ with non-equality regular relations: approximate path comparison.
//!
//! The paper positions ECRPQ (Barceló et al.) as the class with regular
//! relations *beyond* equality (§1.3): CXRPQ string variables can say "these
//! paths carry the same word", ECRPQ can also say "almost the same word".
//! This example compares three relations on a message network:
//!
//! - equality            (what a CXRPQ variable expresses),
//! - Hamming distance ≤ 1 (one corrupted message allowed),
//! - equal length         (only the traffic volume matches).
//!
//! Run with: `cargo run --example approximate_paths`

use cxrpq::automata::parse_regex;
use cxrpq::core::{Ecrpq, EcrpqEvaluator, GraphPattern, RegularRelation};
use cxrpq::graph::{Alphabet, GraphBuilder};
use std::sync::Arc;

fn main() {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let mut db = GraphBuilder::new(alpha);

    // One sender s with four outgoing message streams.
    let s = db.add_named_node("sender");
    let streams = [
        ("exact", "abab"), // reference stream
        ("noisy", "abbb"), // one flipped message
        ("burst", "bbbb"), // two flips
        ("short", "aba"),  // different length
    ];
    let mut sinks = Vec::new();
    for (name, word) in streams {
        let t = db.add_named_node(name);
        let w = db.alphabet().parse_word(word).unwrap();
        db.add_word_path(s, &w, t);
        sinks.push(t);
    }
    let db = db.freeze();
    let reference = sinks[0];

    // Pattern: two streams out of the same sender, jointly constrained.
    let build = |rel: RegularRelation| {
        let mut alpha2 = db.alphabet().clone();
        let mut p = GraphPattern::new();
        let x = p.node("x");
        let y = p.node("y");
        let z = p.node("z");
        let r1 = parse_regex("(a|b)+", &mut alpha2).unwrap();
        let r2 = parse_regex("(a|b)+", &mut alpha2).unwrap();
        p.add_edge(x, r1, y);
        p.add_edge(x, r2, z);
        Ecrpq::new(p, vec![(rel, vec![0, 1])], vec![y, z]).unwrap()
    };

    for (label, rel) in [
        ("equality           ", RegularRelation::equality(2)),
        ("hamming distance ≤1", RegularRelation::hamming_leq(1)),
        ("equal length       ", RegularRelation::equal_length(2)),
    ] {
        let q = build(rel);
        let answers = EcrpqEvaluator::new(&q).answers(&db);
        let partners: Vec<String> = sinks
            .iter()
            .filter(|&&t| answers.contains(&vec![reference, t]))
            .map(|&t| db.node_name(t))
            .collect();
        println!("{label}: exact ~ {{{}}}", partners.join(", "));
    }

    // A witness for the approximate match shows where the words differ.
    let q = build(RegularRelation::hamming_leq(1));
    let w = EcrpqEvaluator::new(&q)
        .witness_for(&db, &[reference, sinks[1]])
        .expect("noisy is within distance 1");
    let (a, b) = (w.paths[0].label(), w.paths[1].label());
    println!(
        "\nwitness words: \"{}\" vs \"{}\" (differ in {} position)",
        db.alphabet().render_word(a),
        db.alphabet().render_word(b),
        a.iter().zip(b).filter(|(x, y)| x != y).count()
    );
}
