//! Figure 1 of the paper: the four genealogy graph patterns (RPQs and
//! CRPQs) evaluated on a synthetic academic-family graph.
//!
//! Run with: `cargo run --example genealogy`

use cxrpq::core::CrpqEvaluator;
use cxrpq::workloads::genealogy;

fn main() {
    let g = genealogy::generate(5, 6, 0.8, 2024);
    println!(
        "population: {} people across {} generations ({} arcs)",
        g.db.node_count(),
        g.generations.len(),
        g.db.edge_count()
    );
    let mut alpha = g.db.alphabet().clone();

    let queries = [
        (
            "G1  (v1 -ps-> sup, sup -p-> v2): v1's child supervised by v2's parent",
            genealogy::fig1_g1(&mut alpha),
        ),
        (
            "G2  (v1 -(p+|s+)-> v2): biological ancestor or academic descendant",
            genealogy::fig1_g2(&mut alpha),
        ),
        (
            "G3  (m -p+-> v1, v1 -s+-> m): a biological ancestor that is an academic ancestor",
            genealogy::fig1_g3(&mut alpha),
        ),
        (
            "G4  (common biological + common academic ancestor)",
            genealogy::fig1_g4(&mut alpha),
        ),
    ];
    for (desc, q) in &queries {
        let ev = CrpqEvaluator::new(q);
        let (found, states) = ev.boolean_with_stats(&g.db);
        let answers = ev.answers(&g.db);
        println!();
        println!("{desc}");
        println!(
            "  matches: {found}; distinct answers: {}; product states explored: {states}",
            answers.len()
        );
        for t in answers.iter().take(4) {
            let names: Vec<String> = t.iter().map(|n| g.db.node_name(*n)).collect();
            println!("  answer: ({})", names.join(", "));
        }
        if answers.len() > 4 {
            println!("  … and {} more", answers.len() - 4);
        }
    }
}
