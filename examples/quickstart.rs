//! Quickstart: build a graph database, write a CXRPQ with a string
//! variable, and evaluate it with three different engines.
//!
//! Run with: `cargo run --example quickstart`

use cxrpq::prelude::*;
use std::sync::Arc;

fn main() {
    // Σ = {a, b, c}. Think of a/b as payload messages and c as a handshake.
    let mut alpha = Alphabet::from_chars("abc");

    // The query: pairs (x, y) connected by a path labelled  w · c · w  for
    // some w ∈ (a|b)+ — the two halves around the handshake must be the
    // SAME word. No CRPQ can express this (it is an inter-path/infix
    // dependency); with a string variable it is one line:
    let q = CxrpqBuilder::new(&mut alpha)
        .edge("x", "z{(a|b)+}cz", "y")
        .output(&["x", "y"])
        .build()
        .expect("valid query");
    println!("query fragment: {:?}", q.fragment());
    for line in q.render(&alpha) {
        println!("  edge {line}");
    }

    // A small database: u ─ab→ m1 ─c→ m2 ─ab→ v  (match: w = ab)
    //                 plus a decoy u' ─ab→ · ─c→ · ─ba→ v' (no match).
    let mut db = GraphBuilder::new(Arc::new(alpha));
    let ab = db.alphabet().parse_word("ab").unwrap();
    let ba = db.alphabet().parse_word("ba").unwrap();
    let c = db.alphabet().parse_word("c").unwrap();
    let u = db.add_named_node("u");
    let m1 = db.add_node();
    let m2 = db.add_node();
    let v = db.add_named_node("v");
    db.add_word_path(u, &ab, m1);
    db.add_word_path(m1, &c, m2);
    db.add_word_path(m2, &ab, v);
    let u2 = db.add_named_node("u'");
    let d1 = db.add_node();
    let d2 = db.add_node();
    let v2 = db.add_named_node("v'");
    db.add_word_path(u2, &ab, d1);
    db.add_word_path(d1, &c, d2);
    db.add_word_path(d2, &ba, v2);
    let db = db.freeze();
    println!(
        "database: {} nodes, {} arcs",
        db.node_count(),
        db.edge_count()
    );

    // Engine 1 — the simple-fragment engine (Lemma 3): this query is
    // "simple" (one definition, classical body, references on the spine).
    let simple = SimpleEvaluator::new(&q).expect("simple query");
    let answers = simple.answers(&db);
    println!("Lemma 3 engine answers:");
    for t in &answers {
        println!("  ({}, {})", db.node_name(t[0]), db.node_name(t[1]));
    }
    assert!(answers.contains(&vec![u, v]));
    assert!(!answers.contains(&vec![u2, v2]));

    // Engine 2 — bounded image size (Theorem 6): interpret the query as
    // CXRPQ^{≤2} (the variable image may have length at most 2).
    let bounded = BoundedEvaluator::new(&q, 2);
    assert_eq!(bounded.answers(&db), answers);
    println!("CXRPQ^≤2 engine agrees (k = 2 suffices for w = ab)");

    // Engine 3 — logarithmic image bound (Corollary 1): k grows with |D|.
    let log = LogEvaluator::new(&q);
    assert_eq!(log.answers(&db), answers);
    println!(
        "CXRPQ^log engine agrees (k = {} for this database)",
        LogEvaluator::bound_for(&db)
    );
}
