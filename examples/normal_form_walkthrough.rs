//! §5.1 of the paper, step by step: the normal-form construction on the
//! worked example γ̄ = (γ₁, γ₂), printing every intermediate stage and the
//! dependency DAG of Figure 3.
//!
//! Run with: `cargo run --example normal_form_walkthrough`

use cxrpq::graph::Alphabet;
use cxrpq::xregex::normal_form::{expand_variable_simple, normal_form};
use cxrpq::xregex::validate::var_relation;
use cxrpq::xregex::{parse_conjunctive, ConjunctiveXregex, Xregex};

fn main() {
    let mut alpha = Alphabet::from_chars("abc");
    // γ1 = x{a*y{b*}az} ∨ (x{b*}·(z ∨ y{c*}))
    // γ2 = (a* ∨ x)·z{y·(a|b)}
    let (comps, vars) = parse_conjunctive(
        &["x{a*y{b*}az}|(x{b*}(z|y{c*}))", "(a*|x)z{y(a|b)}"],
        &mut alpha,
    )
    .unwrap();
    let cx = ConjunctiveXregex::new(comps, vars).unwrap();
    println!("input γ̄ (size {}):", cx.size());
    for (i, line) in cx.render(&alpha).iter().enumerate() {
        println!("  γ{} = {line}", i + 1);
    }

    println!("\nFigure 3 — the dependency DAG G_γ̄ (x ≺ y edges):");
    let joint = cx.joint();
    for (x, y) in var_relation(&joint) {
        println!("  {} ≺ {}", cx.vars().name(x), cx.vars().name(y));
    }

    println!("\nStep 1 (Lemma 4) — multiply out alternations with variables:");
    for (i, comp) in cx.components().iter().enumerate() {
        let branches = expand_variable_simple(comp).unwrap();
        println!(
            "  γ{} expands into {} variable-simple branches:",
            i + 1,
            branches.len()
        );
        for b in &branches {
            println!("    {}", b.render(&alpha, cx.vars()));
        }
    }

    let (nf, stats) = normal_form(&cx).unwrap();
    println!("\nSteps 2+3 (Lemmas 5, 6) — unique definitions, then flattening:");
    println!(
        "  sizes: input {} → step1 {} → step2 {} → normal form {}",
        stats.input_size, stats.after_step1, stats.after_step2, stats.output_size
    );
    println!("  fresh variables introduced: {}", stats.fresh_vars);
    println!("\nnormal form β̄ (every branch simple):");
    for (i, line) in nf.render(&alpha).iter().enumerate() {
        println!("  β{} = {line}", i + 1);
    }

    // Sanity: every branch of every component is simple.
    for comp in nf.components() {
        let branches: Vec<Xregex> = match comp {
            Xregex::Alt(bs) => bs.clone(),
            other => vec![other.clone()],
        };
        for b in &branches {
            assert!(
                cxrpq::xregex::classify::is_simple(b),
                "non-simple branch survived"
            );
        }
    }
    println!("\nall branches verified simple ✓");
}
