//! The paper's hardness reductions, end to end: Theorem 1 (NFA
//! intersection → fixed CXRPQ, PSpace-hardness in data complexity) and
//! Theorem 7 / Figure 4 (Hitting Set → single-edge CXRPQ^{≤1},
//! NP-hardness in combined complexity).
//!
//! Run with: `cargo run --example reductions_gallery`

use cxrpq::core::{BoundedEvaluator, GenericEvaluator, GenericOutcome};
use cxrpq::graph::dot::to_dot;
use cxrpq::workloads::reductions;

fn main() {
    println!("=== Theorem 1: NFA intersection as a fixed graph query ===\n");
    let inst = reductions::random_nfa_intersection(3, 3, 7);
    let expected = inst.intersection_nonempty();
    println!("3 random NFAs over {{a,b}}; ⋂L(Mᵢ) non-empty (ground truth): {expected}");
    if let Some(w) = inst.shortest_witness() {
        println!("shortest common word length: {}", w.len());
    }
    let (db, s, t) = reductions::theorem1_database(&inst);
    println!(
        "reduction database: {} nodes, {} arcs (state graphs + #/##/### connectors)",
        db.node_count(),
        db.edge_count()
    );
    let mut alpha = db.alphabet().clone();
    let q = reductions::alpha_ni(&mut alpha);
    println!("fixed query: (x , #z{{(a|b)*}}(##z)*### , y), checked at (s, t)");
    let cap = inst.shortest_witness().map(|w| w.len()).unwrap_or(5).max(1);
    match GenericEvaluator::new(&q, cap).check(&db, &[s, t]) {
        GenericOutcome::Match { k } => {
            println!("query matches with image bound {k} → intersection non-empty ✓");
        }
        GenericOutcome::NoMatchUpTo { cap } => {
            println!("no match up to image bound {cap} → intersection empty ✓");
        }
    }

    println!("\n=== Theorem 7 / Figure 4: Hitting Set as a single-edge query ===\n");
    let hs = reductions::HittingSet {
        universe: 3,
        sets: vec![vec![0, 1], vec![1, 2], vec![0, 2]],
        k: 2,
    };
    println!(
        "instance: U = {{z0,z1,z2}}, sets {{z0,z1}}, {{z1,z2}}, {{z0,z2}}, k = {}",
        hs.k
    );
    println!("brute force says hitting set exists: {}", hs.brute_force());
    let (db, q) = reductions::theorem7_reduction(&hs);
    println!(
        "Figure 4 database: {} nodes, {} arcs; query has {} string variables",
        db.node_count(),
        db.edge_count(),
        q.conjunctive().var_count()
    );
    let got = BoundedEvaluator::new(&q, 1).boolean(&db);
    println!("CXRPQ^≤1 evaluation: {got} ✓");
    assert_eq!(got, hs.brute_force());

    // Export a small instance of the Figure 4 database for inspection.
    let tiny = reductions::HittingSet {
        universe: 2,
        sets: vec![vec![0], vec![1]],
        k: 1,
    };
    let (tiny_db, _) = reductions::theorem7_reduction(&tiny);
    let dot = to_dot(&tiny_db, "figure4");
    println!(
        "\nGraphviz export of the tiny Figure 4 database ({} lines) — first 5:",
        dot.lines().count()
    );
    for line in dot.lines().take(5) {
        println!("  {line}");
    }
}
