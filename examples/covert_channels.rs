//! Figure 2 / §1.1 of the paper: discovering hidden communication in a
//! message network with the CXRPQ G3 — pairs (v1, v2) that exchange
//! code-word message sequences and share a contact reached by repetitions
//! of those code words. Not expressible as a CRPQ: both the code-word
//! length and the number of repetitions are unbounded, and the paths must
//! agree letter-for-letter.
//!
//! Run with: `cargo run --example covert_channels`

use cxrpq::core::BoundedEvaluator;
use cxrpq::workloads::messages;

fn main() {
    let net = messages::generate(24, 3, 25, 3, 99);
    println!(
        "message network: {} nodes, {} messages sent, {} covert pairs planted",
        net.db.node_count(),
        net.db.edge_count(),
        net.planted.len()
    );

    let mut alpha = net.db.alphabet().clone();
    let q = messages::fig2_g3(&mut alpha);
    println!("query (Figure 2, G3), one edge per line:");
    for line in q.render(&alpha) {
        println!("  {line}");
    }

    // The paper suggests interpreting G3 as CXRPQ^{≤10}: code words of
    // length ≤ 10, repetitions unbounded. Our planted codes are ≤ 3 long.
    let ev = BoundedEvaluator::new(&q, 3);
    let answers = ev.answers(&net.db);
    println!();
    println!("suspicious pairs found: {}", answers.len());
    let mut hits = 0;
    for (v1, v2, friend) in &net.planted {
        let found = answers.contains(&vec![*v1, *v2]);
        hits += usize::from(found);
        println!(
            "  planted ({}, {}) via mutual contact {} — {}",
            net.db.node_name(*v1),
            net.db.node_name(*v2),
            net.db.node_name(*friend),
            if found { "FOUND" } else { "missed" }
        );
    }
    assert_eq!(
        hits,
        net.planted.len(),
        "all planted channels must be found"
    );
    let extra = answers
        .iter()
        .filter(|t| !net.planted.iter().any(|(a, b, _)| vec![*a, *b] == **t))
        .count();
    println!("  plus {extra} coincidental channels arising from noise");
}
