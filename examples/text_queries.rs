//! The textual front-end: parse a graph database and a CXRPQ from plain
//! text, let the planner pick an engine, and print answers with a full
//! witness (morphism, paths, matching words, variable images).
//!
//! Run with: `cargo run --example text_queries`

use cxrpq::core::engine::AutoEvaluator;
use cxrpq::core::query_text::{parse_query, render_query};
use cxrpq::graph::read_graph;

const GRAPH: &str = "\
# A tiny message network: people exchange typed messages.
# hi/ok are payload messages, key is a handshake.
alphabet hi ok key
edge alice  hi  bob
edge bob    ok  carol
edge carol  key dave
edge dave   hi  erin
edge erin   ok  frank
# a decoy channel whose second half does not repeat the first
edge alice  ok  gina
edge gina   hi  hank
edge hank   key irma
edge irma   ok  judy
edge judy   ok  ken
";

const QUERY: &str = "\
# Who is connected by  w · key · w  for a repeated 2-message code word w?
ans(x, y) <-
    (x) -[ w{(<hi>|<ok>)(<hi>|<ok>)} <key> w ]-> (y)
";

fn main() {
    let (db, _names) = read_graph(GRAPH).expect("valid graph text");
    println!(
        "database: {} nodes, {} arcs over {} symbols",
        db.node_count(),
        db.edge_count(),
        db.alphabet().len()
    );

    let mut alphabet = db.alphabet().clone();
    let q = parse_query(QUERY, &mut alphabet).expect("valid query text");
    println!(
        "\nparsed query (re-rendered):\n{}",
        render_query(&q, &alphabet)
    );

    let auto = AutoEvaluator::new(&q);
    println!(
        "planner chose: {} (exact: {})",
        auto.plan(),
        auto.is_exact()
    );

    let result = auto.answers(&db);
    println!(
        "\n{} answer(s) in {:?}:",
        result.value.len(),
        result.elapsed
    );
    for tuple in &result.value {
        let names: Vec<String> = tuple.iter().map(|&n| db.node_name(n)).collect();
        println!("  ({})", names.join(", "));
    }

    // The repeated code word ("hi ok" vs the decoy's "ok hi") is visible in
    // the witness.
    let witness = auto.witness(&db).value.expect("a match exists");
    println!("\nwitness:\n{}", witness.render(&db));
    q.certifies(
        &db,
        &witness,
        &cxrpq::xregex::matcher::MatchConfig::default(),
    )
    .expect("the witness certifies the match");
    println!("witness verified (structure + conjunctive-match oracle) ✓");
}
