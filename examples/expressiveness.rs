//! Figure 5 of the paper: the expressive-power map, demonstrated with the
//! separation witnesses of §7 (Figures 6 and 7) evaluated on the database
//! families from the proofs.
//!
//! Run with: `cargo run --example expressiveness`

use cxrpq::core::{
    translate, BoundedEvaluator, EcrpqEvaluator, GenericEvaluator, GenericOutcome, VsfEvaluator,
};
use cxrpq::graph::Alphabet;
use cxrpq::workloads::{graphs, witnesses};

fn main() {
    println!("Figure 5 separations, witnessed empirically:\n");

    // ⟦CRPQ⟧ ⊊ ⟦CXRPQ^≤1⟧ (Lemma 15): q1 distinguishes D_{a,a} from
    // D_{a,b}, which agree on every CRPQ-visible feature used in the proof.
    let mut alpha = Alphabet::from_chars("abcd");
    let q1 = witnesses::q1(&mut alpha);
    println!("q₁ ∈ CXRPQ^≤1  (u1 -x{{a|b}}-> u2, u3 -d-> u2, u3 -(x|c)-> u4)");
    for (s1, s2) in [('a', 'a'), ('a', 'c'), ('a', 'b'), ('b', 'b')] {
        let db = witnesses::d_sigma(s1, s2);
        let m = BoundedEvaluator::new(&q1, 1).boolean(&db);
        println!("  D_(σ₁={s1}, σ₂={s2}) ⊨ q₁ ?  {m}");
    }
    println!("  → matches exactly when σ₂ = σ₁ or σ₂ = c: a value correlation\n    between two arcs that share no endpoint — beyond any single CRPQ.\n");

    // ⟦CRPQ⟧ ⊊ ⟦ECRPQ^er⟧ (Theorem 9, Claim 2): q_anan needs path equality.
    let mut alpha = Alphabet::from_chars("abcd");
    let q_anan = witnesses::q_anan(&mut alpha);
    println!("q_aⁿaⁿ ∈ ECRPQ^er  (two caⁿc / daⁿd paths, equality relation)");
    for (n, m) in [(3, 3), (3, 2)] {
        let (db, _, _) = graphs::d_anam(n, m);
        println!(
            "  D(caⁿc, daᵐd) n={n} m={m} ⊨ q ?  {}",
            EcrpqEvaluator::new(&q_anan).boolean(&db)
        );
    }
    println!();

    // ⟦ECRPQ^er⟧ ⊊ ⟦ECRPQ⟧ (Theorem 9, Claim 1): q_anbn uses equal-LENGTH,
    // which no equality-only query can express.
    let mut alpha = Alphabet::from_chars("abcd");
    let q_anbn = witnesses::q_anbn(&mut alpha);
    println!("q_aⁿbⁿ ∈ ECRPQ  (equal-length relation over an a-path and a b-path)");
    for (n, m) in [(4, 4), (4, 2)] {
        let (db, _, _) = graphs::d_anbm(n, m);
        println!(
            "  D(caⁿc, dbᵐd) n={n} m={m} ⊨ q ?  {}",
            EcrpqEvaluator::new(&q_anbn).boolean(&db)
        );
    }
    println!();

    // ⟦ECRPQ^er⟧ ⊊ ⟦CXRPQ⟧ (Lemma 16): q2's nested definitions express
    // (aⁿ¹b)ⁿ² c (aⁿ¹b)ⁿ² — doubly-parameterized repetition.
    let mut alpha = Alphabet::from_chars("abc#");
    let q2 = witnesses::q2(&mut alpha);
    println!("q₂ ∈ CXRPQ  (#y{{x{{a⁺b}}x*}}cy#)");
    for (p, q, r, s) in [(1usize, 2usize, 1usize, 2usize), (1, 2, 2, 2)] {
        let (db, _, _) = witnesses::pumping_path(p, q, r, s);
        let verdict = match GenericEvaluator::new(&q2, 8).evaluate(&db) {
            GenericOutcome::Match { k } => format!("true (min image bound {k})"),
            GenericOutcome::NoMatchUpTo { .. } => "false".to_string(),
        };
        println!("  #(a^{p}b)^{q}c(a^{r}b)^{s}# ⊨ q₂ ?  {verdict}");
    }
    println!();

    // The inclusion arrows: Lemma 12 and Lemma 13 translations round-trip.
    println!("Inclusion arrows (Lemmas 12/13): ECRPQ^er → CXRPQ^vsf,fl → ∪-ECRPQ^er");
    let translated = translate::ecrpq_er_to_cxrpq(&q_anan).unwrap();
    println!(
        "  Lemma 12 on q_aⁿaⁿ yields fragment {:?}",
        translated.fragment()
    );
    let (db, _, _) = graphs::d_anam(2, 2);
    let direct = EcrpqEvaluator::new(&q_anan).boolean(&db);
    let via = VsfEvaluator::new(&translated).unwrap().boolean(&db);
    let union = translate::cxrpq_vsf_to_union_ecrpq_er(&translated).unwrap();
    let back = translate::union_ecrpq_boolean(&union, &db);
    println!("  D(ca²c, da²d): native {direct}, via CXRPQ {via}, via ∪-ECRPQ^er {back}");
    assert!(direct && via && back);
}
