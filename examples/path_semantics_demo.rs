//! Path semantics: arbitrary walks vs simple paths vs trails.
//!
//! The paper evaluates everything under arbitrary (walk) semantics and its
//! introduction recalls that simple-path and trail semantics "make the
//! evaluation of RPQs much more difficult" \[34, 36, 35\]. This example
//! shows the three semantics disagreeing on a lollipop graph, and prints a
//! witnessing path under each.
//!
//! Run with: `cargo run --example path_semantics_demo`

use cxrpq::automata::{parse_regex, Nfa};
use cxrpq::core::path_semantics::{rpq_witness, PathSemantics};
use cxrpq::graph::{Alphabet, GraphBuilder};
use std::sync::Arc;

fn main() {
    // s ⇄ m (a cycle) plus s → t: reading aaa from s to t needs the cycle.
    let alpha = Arc::new(Alphabet::from_chars("a"));
    let mut db = GraphBuilder::new(alpha);
    let a = db.alphabet().sym("a");
    let s = db.add_named_node("s");
    let m = db.add_named_node("m");
    let t = db.add_named_node("t");
    db.add_edge(s, a, m);
    db.add_edge(m, a, s);
    db.add_edge(s, a, t);

    let db = db.freeze();
    let mut alpha2 = db.alphabet().clone();
    for (pattern, blurb) in [
        ("aaa", "needs the s→m→s detour once"),
        ("aaaaa", "needs the detour twice (reuses its arcs)"),
    ] {
        let nfa = Nfa::from_regex(&parse_regex(pattern, &mut alpha2).unwrap());
        println!("query {pattern}  ({blurb}):");
        for sem in [
            PathSemantics::Arbitrary,
            PathSemantics::Trail,
            PathSemantics::SimplePath,
        ] {
            match rpq_witness(&db, &nfa, s, t, sem) {
                Some(p) => println!("  {sem:?}: {}", p.render(&db, db.alphabet())),
                None => println!("  {sem:?}: no path"),
            }
        }
        println!();
    }
    println!("Arbitrary ⊇ Trail ⊇ SimplePath — and each inclusion is strict here.");
}
