//! Equivalence properties of the frontier engine.
//!
//! The batched multi-source wavefront (`reach_all`) and the sharded
//! level-synchronous searches are pure optimizations: over random source
//! sets and random / grid / label-dense databases,
//!
//! 1. `reach_all` must equal one `reach_set` per source (both directions),
//! 2. `reach_all` pinned to 1 worker must equal a forced-parallel run
//!    (4 workers, serial threshold 0, so every level shards), and
//! 3. the sharded `SyncSearch` must return identical tuple sets for 1 and
//!    4 workers, again with sharding forced on every level, and
//! 4. routing the same sharded expansions through explicitly pinned
//!    [`WorkerPool`]s — a 1-worker pool (the submitter does all the
//!    helping) vs a 4-worker pool — must not change any result.
//!
//! Thread counts beyond the machine's cores are deliberate: correctness of
//! the shard/merge protocol may not depend on physical parallelism.

use cxrpq::automata::{parse_regex, Nfa};
use cxrpq::core::frontier::FrontierConfig;
use cxrpq::core::reach::{reach_all_with, reach_set, reverse_nfa, Direction};
use cxrpq::core::sync::{SyncSearch, SyncSpec};
use cxrpq::core::WorkerPool;
use cxrpq::graph::{Alphabet, GraphDb, NodeId};
use cxrpq::workloads::graphs::{grid_labeled, random_labeled};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Debug builds pay ~10× on the product searches; keep CI-debug runs fast
/// and let release runs explore more of the space.
const CASES: u32 = if cfg!(debug_assertions) { 16 } else { 48 };

/// A small database of one of three shapes, plus a regex matched to its
/// alphabet.
fn db_and_pattern(seed: u64) -> (GraphDb, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let patterns = ["a*", "a*b", "(a|b)*", "a(a|b)*b", "(ab)*", "..", "_"];
    let pat = patterns[rng.random_range(0..patterns.len())].to_string();
    let db = match rng.random_range(0..3u32) {
        0 => {
            // Random sparse multigraph.
            let alpha = Arc::new(Alphabet::from_chars("ab"));
            let n = rng.random_range(2..30usize);
            random_labeled(alpha, n, rng.random_range(1..4 * n), seed ^ 0xa5a5)
        }
        1 => {
            // Grid: bounded degree, longer diameter.
            let alpha = Arc::new(Alphabet::from_chars("ab"));
            let side = rng.random_range(2..7usize);
            grid_labeled(alpha, side, side, seed ^ 0x5a5a)
        }
        _ => {
            // Label-dense: few nodes, many parallel arcs.
            let alpha = Arc::new(Alphabet::from_chars("abcdefgh"));
            let n = rng.random_range(2..10usize);
            random_labeled(alpha, n, rng.random_range(n..20 * n), seed ^ 0x3c3c)
        }
    };
    (db, pat)
}

fn nfa_of(db: &GraphDb, pattern: &str) -> Nfa {
    let mut a = db.alphabet().clone();
    Nfa::from_regex(&parse_regex(pattern, &mut a).unwrap())
}

/// Random multiset of sources — duplicates and >64 sizes exercise the
/// membership stripes.
fn random_sources(rng: &mut StdRng, db: &GraphDb) -> Vec<NodeId> {
    let n = db.node_count();
    let k = rng.random_range(1..=(2 * n).min(90));
    (0..k)
        .map(|_| NodeId(rng.random_range(0..n) as u32))
        .collect()
}

/// Forced-parallel configuration: more workers than this container has
/// cores, sharding on every level.
fn forced_parallel() -> FrontierConfig {
    FrontierConfig::with_threads(4).with_serial_threshold(0)
}

/// A process-lifetime pool of exactly `N` workers, for pinned-pool runs.
fn pool_of_one() -> &'static WorkerPool {
    static POOL: std::sync::OnceLock<WorkerPool> = std::sync::OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(1))
}

fn pool_of_four() -> &'static WorkerPool {
    static POOL: std::sync::OnceLock<WorkerPool> = std::sync::OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn batched_reach_equals_per_source(seed in 0u64..1_000_000) {
        let (db, pat) = db_and_pattern(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1111);
        let nfa = nfa_of(&db, &pat);
        let rev = reverse_nfa(&nfa);
        let sources = random_sources(&mut rng, &db);
        let serial = FrontierConfig::serial();
        let fwd = reach_all_with(&db, &nfa, &sources, Direction::Forward, None, &serial);
        let bwd = reach_all_with(&db, &rev, &sources, Direction::Backward, None, &serial);
        for (i, &u) in sources.iter().enumerate() {
            prop_assert_eq!(
                &fwd[i],
                &reach_set(&db, &nfa, u, Direction::Forward, None),
                "forward mismatch at source {} of {:?} (seed {})", i, u, seed
            );
            prop_assert_eq!(
                &bwd[i],
                &reach_set(&db, &rev, u, Direction::Backward, None),
                "backward mismatch at source {} of {:?} (seed {})", i, u, seed
            );
        }
    }

    #[test]
    fn parallel_reach_equals_serial(seed in 0u64..1_000_000) {
        let (db, pat) = db_and_pattern(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2222);
        let nfa = nfa_of(&db, &pat);
        let sources = random_sources(&mut rng, &db);
        let serial = reach_all_with(
            &db, &nfa, &sources, Direction::Forward, None, &FrontierConfig::serial(),
        );
        let parallel = reach_all_with(
            &db, &nfa, &sources, Direction::Forward, None, &forced_parallel(),
        );
        prop_assert_eq!(serial, parallel, "thread count changed reach_all (seed {})", seed);
    }

    #[test]
    fn parallel_sync_equals_serial(seed in 0u64..1_000_000) {
        let (db, pat) = db_and_pattern(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3333);
        let n = db.node_count();
        let arity = rng.random_range(1..=3usize);
        // Half the groups carry a definition automaton, half are pure
        // equality (Σ* walkers).
        let def = (rng.random_range(0..2u32) == 0).then(|| nfa_of(&db, &pat));
        let spec = SyncSpec::equality_group(def, arity);
        let starts: Vec<NodeId> = (0..arity)
            .map(|_| NodeId(rng.random_range(0..n) as u32))
            .collect();
        let serial = SyncSearch::forward(&db, &spec)
            .with_config(FrontierConfig::serial())
            .run(&starts, None, None);
        let parallel = SyncSearch::forward(&db, &spec)
            .with_config(forced_parallel())
            .run(&starts, None, None);
        prop_assert_eq!(&serial, &parallel, "thread count changed SyncSearch (seed {})", seed);
        // Backward over the reversed spec must agree across thread counts
        // too (the solver's enumerate-sources path).
        let rev = spec.reversed();
        let serial_b = SyncSearch::backward(&db, &rev)
            .with_config(FrontierConfig::serial())
            .run(&starts, None, None);
        let parallel_b = SyncSearch::backward(&db, &rev)
            .with_config(forced_parallel())
            .run(&starts, None, None);
        prop_assert_eq!(&serial_b, &parallel_b, "backward sync mismatch (seed {})", seed);
    }

    #[test]
    fn pool_size_does_not_change_results(seed in 0u64..1_000_000) {
        let (db, pat) = db_and_pattern(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4444);
        let nfa = nfa_of(&db, &pat);
        let sources = random_sources(&mut rng, &db);
        // Same sharded expansion (4 shards, shard every level), routed
        // through explicitly pinned pools of different sizes. With one
        // worker the submitting thread runs most chunks itself via
        // help-while-wait; the merged result must be identical.
        let one = forced_parallel().with_pool(pool_of_one());
        let four = forced_parallel().with_pool(pool_of_four());
        let r1 = reach_all_with(&db, &nfa, &sources, Direction::Forward, None, &one);
        let r4 = reach_all_with(&db, &nfa, &sources, Direction::Forward, None, &four);
        prop_assert_eq!(r1, r4, "pool size changed reach_all (seed {})", seed);

        let arity = rng.random_range(1..=3usize);
        let def = (rng.random_range(0..2u32) == 0).then(|| nfa_of(&db, &pat));
        let spec = SyncSpec::equality_group(def, arity);
        let n = db.node_count();
        let starts: Vec<NodeId> = (0..arity)
            .map(|_| NodeId(rng.random_range(0..n) as u32))
            .collect();
        let s1 = SyncSearch::forward(&db, &spec)
            .with_config(one)
            .run(&starts, None, None);
        let s4 = SyncSearch::forward(&db, &spec)
            .with_config(four)
            .run(&starts, None, None);
        prop_assert_eq!(&s1, &s4, "pool size changed SyncSearch (seed {})", seed);
    }
}
