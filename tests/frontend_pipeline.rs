//! End-to-end front-end pipeline: text graph → text query → planner →
//! engine → witness → certification, plus round-trips of both text formats
//! and cross-engine agreement through the planner.

use cxrpq::core::engine::{AutoEvaluator, EngineKind, EvalOptions};
use cxrpq::core::query_text::{parse_query, render_query};
use cxrpq::core::{BoundedEvaluator, SimpleEvaluator, VsfEvaluator};
use cxrpq::graph::{read_graph, write_graph};
use cxrpq::xregex::matcher::MatchConfig;

const GRAPH: &str = "\
alphabet a b c
edge u  a m1
edge m1 b m2
edge m2 c m3
edge m3 a m4
edge m4 b v
edge p  b q1
edge q1 a q2
edge q2 c q3
edge q3 a q4
edge q4 a w
";

#[test]
fn pipeline_text_to_certified_witness() {
    let (db, names) = read_graph(GRAPH).unwrap();
    let mut alphabet = db.alphabet().clone();
    let q = parse_query("ans(x, y) <- (x) -[ z{(a|b)(a|b)}cz ]-> (y)", &mut alphabet).unwrap();
    let auto = AutoEvaluator::new(&q);
    assert_eq!(auto.plan(), EngineKind::Simple);
    let answers = auto.answers(&db).value;
    // Only the u…v chain repeats its two-symbol prefix after c.
    assert!(answers.contains(&vec![names["u"], names["v"]]));
    assert!(!answers.contains(&vec![names["p"], names["w"]]));
    let w = auto.witness(&db).value.expect("match exists");
    q.certifies(&db, &w, &MatchConfig::default()).unwrap();
}

#[test]
fn graph_round_trip_preserves_query_results() {
    let (db, names) = read_graph(GRAPH).unwrap();
    let (db2, names2) = read_graph(&write_graph(&db)).unwrap();
    let mut alphabet = db.alphabet().clone();
    let q = parse_query("ans(x, y) <- (x) -[ z{(a|b)(a|b)}cz ]-> (y)", &mut alphabet).unwrap();
    let mut alphabet2 = db2.alphabet().clone();
    let q2 = parse_query(
        "ans(x, y) <- (x) -[ z{(a|b)(a|b)}cz ]-> (y)",
        &mut alphabet2,
    )
    .unwrap();
    let a1 = SimpleEvaluator::new(&q).unwrap().answers(&db);
    let a2 = SimpleEvaluator::new(&q2).unwrap().answers(&db2);
    // Compare through node names (ids may differ across parses).
    let render = |ans: &std::collections::BTreeSet<Vec<cxrpq::graph::NodeId>>,
                  db: &cxrpq::graph::GraphDb| {
        ans.iter()
            .map(|t| {
                t.iter()
                    .map(|&n| db.node_name(n))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<std::collections::BTreeSet<_>>()
    };
    assert_eq!(render(&a1, &db), render(&a2, &db2));
    assert_eq!(names.len(), names2.len());
}

#[test]
fn query_render_round_trip_preserves_answers() {
    let (db, _) = read_graph(GRAPH).unwrap();
    let mut alphabet = db.alphabet().clone();
    let text = "ans(x, y) <- (x) -[ z{(a|b)+}cz ]-> (y)";
    let q = parse_query(text, &mut alphabet).unwrap();
    let rendered = render_query(&q, &alphabet);
    let mut alphabet2 = db.alphabet().clone();
    let q2 = parse_query(&rendered, &mut alphabet2).unwrap();
    assert_eq!(
        SimpleEvaluator::new(&q).unwrap().answers(&db),
        SimpleEvaluator::new(&q2).unwrap().answers(&db)
    );
}

#[test]
fn planner_matches_forced_engines_on_shared_fragment() {
    let (db, _) = read_graph(GRAPH).unwrap();
    let mut alphabet = db.alphabet().clone();
    // A simple query is in every engine's domain: all must agree.
    let q = parse_query("ans(x, y) <- (x) -[ z{(a|b)+}cz ]-> (y)", &mut alphabet).unwrap();
    let reference = SimpleEvaluator::new(&q).unwrap().answers(&db);
    assert_eq!(VsfEvaluator::new(&q).unwrap().answers(&db), reference);
    // Image length is exactly 2 here, so ≤2-bounded evaluation coincides.
    assert_eq!(BoundedEvaluator::new(&q, 2).answers(&db), reference);
    for force in [EngineKind::Simple, EngineKind::Vsf, EngineKind::Bounded] {
        let auto = AutoEvaluator::with_options(
            &q,
            EvalOptions {
                bounded_k: 2,
                force: Some(force),
                governor: None,
                plan_seed: None,
            },
        )
        .unwrap();
        assert_eq!(auto.answers(&db).value, reference, "{force:?}");
    }
}

#[test]
fn parallel_bounded_in_pipeline() {
    let (db, names) = read_graph(GRAPH).unwrap();
    let mut alphabet = db.alphabet().clone();
    let q = parse_query("ans(x, y) <- (x) -[ z{(a|b)+}cz ]-> (y)", &mut alphabet).unwrap();
    let ev = BoundedEvaluator::new(&q, 2);
    let serial = ev.answers(&db);
    for threads in [2, 4] {
        assert_eq!(ev.answers_parallel(&db, threads), serial);
    }
    assert!(serial.contains(&vec![names["u"], names["v"]]));
}
