//! Differential property test for the layered delta-CSR storage.
//!
//! A [`GraphDb`] grown through an arbitrary interleaving of streaming
//! mutations — `append` / `append_batch` / `append_node` / `compact`, with
//! duplicate arcs re-offered along the way — must be indistinguishable
//! from the same final graph frozen from scratch in one
//! [`GraphBuilder::freeze`]:
//!
//! - identical adjacency (edge sets, per-row merged runs, per-`(node,
//!   label)` runs, both directions, label statistics),
//! - identical product-reachability sets under random automata
//!   ([`reach_set`], both directions, every node),
//! - identical `answers()`/`boolean()` for random CRPQ and simple-CXRPQ
//!   instances under both the naive and the plan/prune/enumerate solver
//!   configurations,
//! - and a [`ReachCache`] consulted *between* the mutation steps (so its
//!   label-aware invalidation is exercised mid-stream) always agrees with
//!   a fresh uncached search against the current snapshot.

use cxrpq::automata::Nfa;
use cxrpq::core::reach::{reach_set, Direction, ReachCache};
use cxrpq::core::{Crpq, CrpqEvaluator, Cxrpq, GraphPattern, SimpleEvaluator, SolveOptions};
use cxrpq::graph::{Alphabet, GraphBuilder, GraphDb, NodeId, Symbol};
use cxrpq::workloads::rand_queries::{random_classical, random_simple, QueryShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Debug builds pay ~10× on the product searches; keep CI-debug runs fast
/// and let release runs explore more of the space.
const CASES: u32 = if cfg!(debug_assertions) { 10 } else { 40 };

fn alphabet() -> Arc<Alphabet> {
    Arc::new(Alphabet::from_chars("abc"))
}

fn random_edges(
    rng: &mut StdRng,
    syms: &[Symbol],
    nodes: usize,
    count: usize,
) -> Vec<(NodeId, Symbol, NodeId)> {
    (0..count)
        .map(|_| {
            (
                NodeId(rng.random_range(0..nodes as u32)),
                syms[rng.random_range(0..syms.len())],
                NodeId(rng.random_range(0..nodes as u32)),
            )
        })
        .collect()
}

/// Grows a database via a random interleaving of appends and compactions
/// (watched by `watch` between steps), alongside the freeze-from-scratch
/// reference over the same nodes and edges.
fn build_pair(seed: u64, mut watch: impl FnMut(&GraphDb)) -> (GraphDb, GraphDb) {
    let mut rng = StdRng::seed_from_u64(seed);
    let alpha = alphabet();
    let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| alpha.sym(s)).collect();
    let n0 = rng.random_range(2..6usize); // frozen seed nodes
    let extra = rng.random_range(0..3usize); // appended nodes
    let n = n0 + extra;
    let base_count = rng.random_range(0..10usize);
    let base = random_edges(&mut rng, &syms, n0, base_count);
    let delta_count = rng.random_range(1..12usize);
    let delta = random_edges(&mut rng, &syms, n, delta_count);

    // Layered: freeze the seed, then stream the rest.
    let mut b = GraphBuilder::new(alpha.clone());
    for _ in 0..n0 {
        b.add_node();
    }
    for &(u, a, v) in &base {
        b.add_edge(u, a, v);
    }
    let mut layered = b.freeze();
    watch(&layered);
    for _ in 0..extra {
        layered.append_node();
    }
    let mut rest = delta.as_slice();
    while !rest.is_empty() {
        let k = rng.random_range(1..=rest.len());
        let (batch, tail) = rest.split_at(k);
        if rng.random_bool(0.5) {
            layered.append_batch(batch);
        } else {
            for &(u, a, v) in batch {
                layered.append(u, a, v);
            }
        }
        rest = tail;
        watch(&layered);
        // Re-offer an already-present arc: must be a no-op.
        if let Some(&(u, a, v)) = base.first() {
            assert!(!layered.append(u, a, v));
        }
        if rng.random_bool(0.3) {
            layered.compact();
            watch(&layered);
        }
    }
    if rng.random_bool(0.5) {
        layered.compact();
        watch(&layered);
    }

    // Reference: everything in one freeze.
    let mut b = GraphBuilder::new(alpha);
    for _ in 0..n {
        b.add_node();
    }
    for &(u, a, v) in base.iter().chain(delta.iter()) {
        b.add_edge(u, a, v);
    }
    (layered, b.freeze())
}

/// Structural equality of two databases (rows compared as sorted vecs —
/// a merged run orders base before delta within a label).
fn assert_same_adjacency(layered: &GraphDb, oneshot: &GraphDb) {
    assert_eq!(layered.node_count(), oneshot.node_count());
    assert_eq!(layered.edge_count(), oneshot.edge_count());
    let all_l: BTreeSet<_> = layered.edges().collect();
    let all_o: BTreeSet<_> = oneshot.edges().collect();
    assert_eq!(all_l, all_o, "edge sets diverge");
    assert_eq!(layered.label_edge_counts(), oneshot.label_edge_counts());
    let sorted = |run: cxrpq::graph::EdgeRun<'_>| {
        let mut v = run.to_vec();
        v.sort_unstable();
        v
    };
    for u in layered.nodes() {
        assert_eq!(sorted(layered.out_edges(u)), sorted(oneshot.out_edges(u)));
        assert_eq!(sorted(layered.in_edges(u)), sorted(oneshot.in_edges(u)));
        for &a in &[0, 1, 2].map(|i| Symbol(i as u32)) {
            assert_eq!(
                sorted(layered.successors_with(u, a)),
                sorted(oneshot.successors_with(u, a)),
                "successors_with({u:?}, {a:?})"
            );
            assert_eq!(
                sorted(layered.predecessors_with(u, a)),
                sorted(oneshot.predecessors_with(u, a)),
                "predecessors_with({u:?}, {a:?})"
            );
        }
        let runs_l: Vec<_> = layered
            .out_label_runs(u)
            .map(|(s, r)| (s, sorted(r)))
            .collect();
        let runs_o: Vec<_> = oneshot
            .out_label_runs(u)
            .map(|(s, r)| (s, sorted(r)))
            .collect();
        assert_eq!(runs_l, runs_o, "out_label_runs({u:?})");
    }
}

/// A random graph pattern over `vars` node variables with `edges` edges
/// labelled by component indices `0..edges`.
fn random_pattern(rng: &mut StdRng, vars: usize, edges: usize) -> GraphPattern<usize> {
    let mut pattern = GraphPattern::new();
    let nodes: Vec<_> = (0..vars).map(|i| pattern.node(&format!("n{i}"))).collect();
    for i in 0..edges {
        let s = nodes[rng.random_range(0..nodes.len())];
        let t = nodes[rng.random_range(0..nodes.len())];
        pattern.add_edge(s, i, t);
    }
    pattern
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn interleaved_appends_equal_one_freeze(seed in 0u64..100_000) {
        let (layered, oneshot) = build_pair(seed, |_| {});
        assert_same_adjacency(&layered, &oneshot);

        // Reach sets under random automata, every node, both directions.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1ab1e);
        for _ in 0..3 {
            let nfa = Nfa::from_regex(&random_classical(&mut rng, 3, 2));
            for u in layered.nodes() {
                for dir in [Direction::Forward, Direction::Backward] {
                    prop_assert_eq!(
                        reach_set(&layered, &nfa, u, dir, None),
                        reach_set(&oneshot, &nfa, u, dir, None),
                        "reach diverges from {:?}", u
                    );
                }
            }
        }
    }

    #[test]
    fn solver_agrees_on_layered_and_oneshot(seed in 0u64..100_000) {
        let (layered, oneshot) = build_pair(seed, |_| {});
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);

        // Random CRPQ under both solver configurations.
        let pat_edges = rng.random_range(2..=3usize);
        let pattern = random_pattern(&mut rng, 3, pat_edges)
            .map_labels(|_, _| random_classical(&mut rng, 2, 2));
        let out0 = pattern.node_var("n0").unwrap();
        let out1 = pattern.node_var("n1").unwrap();
        let q = Crpq::new(pattern, vec![out0, out1]);
        let ev = CrpqEvaluator::new(&q);
        for opts in [SolveOptions::naive(), SolveOptions::pipeline().projected()] {
            let (ans_l, _) = ev.answers_opts(&layered, &opts);
            let (ans_o, _) = ev.answers_opts(&oneshot, &opts);
            prop_assert_eq!(ans_l, ans_o, "CRPQ answers diverge");
            prop_assert_eq!(
                ev.boolean_opts(&layered, &opts).0,
                ev.boolean_opts(&oneshot, &opts).0,
                "CRPQ boolean diverges"
            );
        }

        // Random simple CXRPQ (equality groups drive the synchronized
        // product search over merged runs).
        let shape = QueryShape { dims: 2, vars: 2, sigma: 2, alt_prob: 0.0 };
        let cx = random_simple(&mut rng, &shape);
        let pattern = random_pattern(&mut rng, 3, shape.dims);
        let out0 = pattern.node_var("n0").unwrap();
        let q = Cxrpq::from_parts(pattern, cx, vec![out0]);
        let ev = SimpleEvaluator::new(&q).expect("generated queries are simple");
        let (ans_l, _) = ev.answers_opts(&layered, &SolveOptions::pipeline());
        let (ans_o, _) = ev.answers_opts(&oneshot, &SolveOptions::pipeline());
        prop_assert_eq!(ans_l, ans_o, "CXRPQ answers diverge");
    }

    #[test]
    fn reach_cache_agrees_mid_stream(seed in 0u64..100_000) {
        // Query a long-lived cache between every mutation step: its
        // label-aware invalidation must never serve a stale fill.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xcac4e);
        let nfa = Nfa::from_regex(&random_classical(&mut rng, 3, 2));
        let mut cache = ReachCache::new(nfa.clone());
        build_pair(seed, |db| {
            for u in db.nodes() {
                let cached = cache.targets(db, u);
                let fresh = reach_set(db, &nfa, u, Direction::Forward, None);
                assert_eq!(*cached, fresh, "stale cache fill from {u:?}");
                let cached = cache.sources(db, u);
                let fresh = reach_set(
                    db,
                    &cxrpq::core::reach::reverse_nfa(&nfa),
                    u,
                    Direction::Backward,
                    None,
                );
                assert_eq!(*cached, fresh, "stale cache source fill from {u:?}");
            }
        });
    }
}
