//! Cross-engine agreement property test, run through the planner.
//!
//! Random *simple* CXRPQs over random small multigraphs must produce
//! identical answer relations from the Lemma 3 engine (`Simple`, the
//! planner's own choice for this fragment), the forced vstar-free engine
//! (`Vsf`, Lemma 7 — simple queries sit inside its fragment), and the
//! forced bounded-image engine (`Bounded`, Theorem 6) with a generous `k`.
//! The generator gives every string variable exactly one definition with a
//! *finite* body of image length ≤ 4, so `⊨_{≤k}` with `k = 6` coincides
//! with the unrestricted semantics and all three engines are exact.
//!
//! All three evaluations go through [`AutoEvaluator`], so planner dispatch
//! (fragment classification, forced-engine validation, build-once plan
//! construction) is exercised too.

use cxrpq::core::{AutoEvaluator, Cxrpq, EngineKind, EvalOptions, GraphPattern};
use cxrpq::graph::Alphabet;
use cxrpq::workloads::graphs::random_labeled;
use cxrpq::workloads::rand_queries::{random_simple, QueryShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Debug builds pay ~10× on the product searches; keep CI-debug runs fast
/// and let release runs explore more of the space.
const CASES: u32 = if cfg!(debug_assertions) { 12 } else { 64 };

/// Image lengths in `random_simple` queries never exceed 4 (finite bodies
/// of depth 2), so this bound makes the bounded engine exact.
const GENEROUS_K: usize = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn simple_vsf_and_bounded_agree_via_planner(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = QueryShape { dims: 2, vars: 2, sigma: 2, alt_prob: 0.0 };
        let cx = random_simple(&mut rng, &shape);

        // A random pattern over three node variables: one edge per
        // component, endpoints drawn at random (self-loops allowed).
        let mut pattern = GraphPattern::new();
        let nodes = [pattern.node("u"), pattern.node("v"), pattern.node("w")];
        for i in 0..shape.dims {
            let s = nodes[rng.random_range(0..nodes.len())];
            let t = nodes[rng.random_range(0..nodes.len())];
            pattern.add_edge(s, i, t);
        }
        let q = Cxrpq::from_parts(pattern, cx, vec![nodes[0], nodes[1]]);

        // A random small multigraph (parallel labels exercise the
        // label-run expansion of the synchronized search).
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = random_labeled(alpha, 4, 10, seed ^ 0x9e37_79b9);

        let auto = AutoEvaluator::new(&q);
        prop_assert_eq!(auto.plan(), EngineKind::Simple);
        prop_assert!(auto.is_exact());
        let baseline = auto.answers(&db);
        prop_assert_eq!(baseline.engine, EngineKind::Simple);

        for force in [EngineKind::Vsf, EngineKind::Bounded] {
            let forced = AutoEvaluator::with_options(
                &q,
                EvalOptions {
                    bounded_k: GENEROUS_K,
                    force: Some(force),
                    governor: None,
                    plan_seed: None,
                },
            )
            .expect("simple queries admit every engine");
            prop_assert_eq!(forced.plan(), force);
            let got = forced.answers(&db);
            prop_assert_eq!(got.engine, force);
            prop_assert_eq!(
                &got.value,
                &baseline.value,
                "engine {:?} disagrees with Simple on seed {}",
                force,
                seed
            );
        }
    }
}
