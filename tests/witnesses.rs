//! End-to-end witness extraction tests: every engine must return
//! certificates that verify structurally (paths exist in the database and
//! connect the morphism) and semantically (the matching words are a
//! conjunctive match, checked by the independent backtracking oracle).

use cxrpq::core::{
    BoundedEvaluator, Crpq, CrpqEvaluator, CxrpqBuilder, Ecrpq, EcrpqEvaluator, GraphPattern,
    RegularRelation, SimpleEvaluator, VsfEvaluator,
};
use cxrpq::graph::{Alphabet, GraphBuilder, GraphDb, NodeId};
use cxrpq::xregex::matcher::MatchConfig;
use cxrpq_automata::{parse_regex, Nfa};
use std::collections::HashMap;
use std::sync::Arc;

fn db_with_words(words: &[(&str, &str)]) -> (GraphDb, HashMap<String, NodeId>) {
    let alpha = Arc::new(Alphabet::from_chars("abcd"));
    let mut db = GraphBuilder::new(alpha);
    let mut names: HashMap<String, NodeId> = HashMap::new();
    for (pair, w) in words {
        let (s, t) = pair.split_once('>').unwrap();
        let sn = *names.entry(s.to_string()).or_insert_with(|| db.add_node());
        let tn = *names.entry(t.to_string()).or_insert_with(|| db.add_node());
        let word = db.alphabet().parse_word(w).unwrap();
        db.add_word_path(sn, &word, tn);
    }
    (db.freeze(), names)
}

#[test]
fn crpq_witness_words_match_edge_regexes() {
    let (db, names) = db_with_words(&[("u>v", "aab"), ("v>w", "cd")]);
    let mut alpha = db.alphabet().clone();
    let q = Crpq::build(
        &[("x", "a+b", "y"), ("y", "c(d|a)", "z")],
        &["x", "z"],
        &mut alpha,
    )
    .unwrap();
    let w = CrpqEvaluator::new(&q).witness(&db).expect("match exists");
    w.verify(&db, q.pattern()).unwrap();
    // Each path's label is accepted by the corresponding edge automaton.
    for (i, (_, re, _)) in q.pattern().edges().iter().enumerate() {
        assert!(Nfa::from_regex(re).accepts(w.paths[i].label()), "edge {i}");
    }
    assert!(w.images.is_empty());
    // witness_for respects the pinned tuple.
    let wf = CrpqEvaluator::new(&q)
        .witness_for(&db, &[names["u"], names["w"]])
        .expect("tuple is an answer");
    assert_eq!(wf.paths[0].start(), names["u"]);
    assert_eq!(wf.paths[1].end(), names["w"]);
    // And rejects a non-answer.
    assert!(CrpqEvaluator::new(&q)
        .witness_for(&db, &[names["v"], names["w"]])
        .is_none());
}

#[test]
fn simple_witness_reports_variable_images() {
    // z{(a|b)+} c z on a path ab·c·ab: ψ(z) = ab.
    let (db, names) = db_with_words(&[("u>m", "abc"), ("m>v", "ab")]);
    let mut alpha = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut alpha)
        .edge("x", "z{(a|b)+}cz", "y")
        .output(&["x", "y"])
        .build()
        .unwrap();
    let ev = SimpleEvaluator::new(&q).unwrap();
    let w = ev
        .witness_for(&db, &[names["u"], names["v"]])
        .expect("match exists");
    q.certifies(&db, &w, &MatchConfig::default()).unwrap();
    assert_eq!(w.paths.len(), 1);
    assert_eq!(db.alphabet().render_word(w.paths[0].label()), "abcab");
    let img: HashMap<&str, String> = w
        .images
        .iter()
        .map(|(x, v)| (x.as_str(), db.alphabet().render_word(v)))
        .collect();
    assert_eq!(img["z"], "ab");
}

#[test]
fn simple_witness_chain_variables_get_images() {
    // y{a+} / x{y} / x: the chain x{y} is eliminated internally but the
    // witness still reports ψ(x) = ψ(y).
    let (db, names) = db_with_words(&[("p>q", "aa"), ("r>s", "aa"), ("t>w", "aa")]);
    let mut alpha = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut alpha)
        .edge("p", "y{a+}", "q")
        .edge("r", "x{y}", "s")
        .edge("t", "x", "w")
        .output(&["p", "q", "r", "s", "t", "w"])
        .build()
        .unwrap();
    let ev = SimpleEvaluator::new(&q).unwrap();
    let w = ev
        .witness_for(
            &db,
            &[
                names["p"], names["q"], names["r"], names["s"], names["t"], names["w"],
            ],
        )
        .expect("match exists");
    q.certifies(&db, &w, &MatchConfig::default()).unwrap();
    let img: HashMap<&str, String> = w
        .images
        .iter()
        .map(|(x, v)| (x.as_str(), db.alphabet().render_word(v)))
        .collect();
    assert_eq!(img["y"], "aa");
    assert_eq!(img["x"], "aa");
}

#[test]
fn vsf_witness_on_figure_2_g2_triangle() {
    let alpha = Arc::new(Alphabet::from_chars("abcd"));
    let mut db = GraphBuilder::new(alpha);
    let v1 = db.add_node();
    let v2 = db.add_node();
    let v3 = db.add_node();
    let aa = db.alphabet().parse_word("aa").unwrap();
    let cd = db.alphabet().parse_word("cd").unwrap();
    db.add_word_path(v1, &aa, v2);
    db.add_word_path(v2, &cd, v3);
    db.add_word_path(v3, &aa, v1);
    let db = db.freeze();
    let mut alpha2 = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut alpha2)
        .edge("v1", "x{aa|b}", "v2")
        .edge("v2", "y{(c|d)*}", "v3")
        .edge("v3", "x|y", "v1")
        .output(&["v1", "v2", "v3"])
        .build()
        .unwrap();
    let ev = VsfEvaluator::new(&q).unwrap();
    let w = ev
        .witness_for(&db, &[v1, v2, v3])
        .expect("triangle matches");
    // Structural validity against the original pattern.
    w.verify(&db, q.pattern()).unwrap();
    // Semantic: the words form a conjunctive match of the original query.
    let words = w.matching_words();
    assert!(q
        .conjunctive()
        .is_match(&words, &MatchConfig::default())
        .unwrap()
        .is_some());
    // The return path must equal the x-word (aa).
    assert_eq!(db.alphabet().render_word(w.paths[2].label()), "aa");
}

#[test]
fn bounded_witness_images_are_the_guessed_mapping() {
    let (db, names) = db_with_words(&[("u>m", "abc"), ("m>v", "ab")]);
    let mut alpha = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut alpha)
        .edge("x", "z{(a|b)+}cz", "y")
        .output(&["x", "y"])
        .build()
        .unwrap();
    let ev = BoundedEvaluator::new(&q, 2);
    let w = ev
        .witness_for(&db, &[names["u"], names["v"]])
        .expect("k=2 suffices");
    q.certifies(&db, &w, &MatchConfig::bounded(2)).unwrap();
    let img: HashMap<&str, String> = w
        .images
        .iter()
        .map(|(x, v)| (x.as_str(), db.alphabet().render_word(v)))
        .collect();
    assert_eq!(img["z"], "ab");
    // k = 1 cannot witness the match at all.
    assert!(BoundedEvaluator::new(&q, 1)
        .witness_for(&db, &[names["u"], names["v"]])
        .is_none());
}

#[test]
fn ecrpq_witness_satisfies_the_relation() {
    // Equal-length relation: the two witnessed paths must have equal length.
    let (db, names) = db_with_words(&[("u>v", "aaa"), ("p>q", "bdb")]);
    let mut alpha = db.alphabet().clone();
    let mut pattern = GraphPattern::new();
    let x = pattern.node("x");
    let y = pattern.node("y");
    let u = pattern.node("u");
    let v = pattern.node("v");
    let r1 = parse_regex("a*", &mut alpha).unwrap();
    let r2 = parse_regex("(b|d)*", &mut alpha).unwrap();
    pattern.add_edge(x, r1, y);
    pattern.add_edge(u, r2, v);
    let q = Ecrpq::new(
        pattern,
        vec![(RegularRelation::equal_length(2), vec![0, 1])],
        vec![x, y, u, v],
    )
    .unwrap();
    let w = EcrpqEvaluator::new(&q)
        .witness_for(&db, &[names["u"], names["v"], names["p"], names["q"]])
        .expect("3 = 3");
    w.verify(&db, q.pattern()).unwrap();
    assert_eq!(w.paths[0].len(), w.paths[1].len());
    assert_eq!(w.paths[0].len(), 3);
}

#[test]
fn no_witness_when_no_match() {
    let (db, _) = db_with_words(&[("u>v", "ab")]);
    let mut alpha = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut alpha)
        .edge("x", "z{c+}z", "y")
        .build()
        .unwrap();
    assert!(SimpleEvaluator::new(&q).unwrap().witness(&db).is_none());
    assert!(BoundedEvaluator::new(&q, 3).witness(&db).is_none());
    assert!(VsfEvaluator::new(&q).unwrap().witness(&db).is_none());
}

#[test]
fn witness_render_mentions_images() {
    let (db, _) = db_with_words(&[("u>m", "abc"), ("m>v", "ab")]);
    let mut alpha = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut alpha)
        .edge("x", "z{(a|b)+}cz", "y")
        .build()
        .unwrap();
    let w = SimpleEvaluator::new(&q).unwrap().witness(&db).unwrap();
    let text = w.render(&db);
    assert!(text.contains("morphism:"));
    assert!(text.contains("z = \"ab\""));
}

/// Witnesses agree with boolean evaluation on a grid of planted instances:
/// witness() is Some iff boolean() — and when Some, it certifies.
#[test]
fn witness_existence_matches_boolean_across_engines() {
    // Queries are unanchored, so counterexamples must exclude *every*
    // sub-path — two-letter images pinned by the definition do that.
    let cases = [
        (
            vec![("u>m", "ab"), ("m>v", "d"), ("v>w", "ab")],
            "z{ab|ba}dz",
            true,
        ),
        (
            vec![("u>m", "ab"), ("m>v", "d"), ("v>w", "ba")],
            "z{ab|ba}dz",
            false,
        ),
        (vec![("u>v", "abab")], "z{ab}z", true),
        (vec![("u>v", "abba")], "z{ab}z", false),
    ];
    for (edges, pat, expect) in cases {
        let (db, _) = db_with_words(&edges);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", pat, "y")
            .build()
            .unwrap();
        let simple = SimpleEvaluator::new(&q).unwrap();
        assert_eq!(simple.boolean(&db), expect, "simple bool {pat}");
        let w = simple.witness(&db);
        assert_eq!(w.is_some(), expect, "simple witness {pat}");
        if let Some(w) = w {
            q.certifies(&db, &w, &MatchConfig::default()).unwrap();
        }
        let bounded = BoundedEvaluator::new(&q, 2);
        let wb = bounded.witness(&db);
        assert_eq!(wb.is_some(), expect, "bounded witness {pat}");
        if let Some(wb) = wb {
            q.certifies(&db, &wb, &MatchConfig::default()).unwrap();
        }
    }
}
