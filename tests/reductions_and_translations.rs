//! Integration sweeps: the hardness reductions against brute force, and
//! the §7 translations against direct evaluation.

use cxrpq::core::{
    translate, BoundedEvaluator, CrpqEvaluator, EcrpqEvaluator, GenericEvaluator, GenericOutcome,
    VsfEvaluator,
};
use cxrpq::graph::Alphabet;
use cxrpq::workloads::{graphs, reductions, witnesses};
use std::sync::Arc;

#[test]
fn theorem1_reduction_agreement_sweep() {
    for k in 1..=3usize {
        for seed in 0..5u64 {
            let inst = reductions::random_nfa_intersection(k, 3, seed * 13 + k as u64);
            let (db, s, t) = reductions::theorem1_database(&inst);
            let mut alpha = db.alphabet().clone();
            let q = reductions::alpha_ni(&mut alpha);
            let expected = inst.intersection_nonempty();
            let cap = inst.shortest_witness().map(|w| w.len()).unwrap_or(5).max(1);
            let got = matches!(
                GenericEvaluator::new(&q, cap).check(&db, &[s, t]),
                GenericOutcome::Match { .. }
            );
            assert_eq!(got, expected, "k={k} seed={seed}");
        }
    }
}

#[test]
fn theorem3_vstar_free_reduction_agreement() {
    for seed in 0..6u64 {
        let inst = reductions::random_nfa_intersection(2, 4, seed);
        let (db, s, t) = reductions::theorem1_database(&inst);
        let mut alpha = db.alphabet().clone();
        let q = reductions::alpha_kni(2, &mut alpha);
        let got = VsfEvaluator::new(&q).unwrap().check(&db, &[s, t]);
        assert_eq!(got, inst.intersection_nonempty(), "seed {seed}");
    }
}

#[test]
fn hitting_set_agreement_sweep() {
    for seed in 0..8u64 {
        let inst = reductions::random_hitting_set(3, 3, 2, 1, seed);
        let (db, q) = reductions::theorem7_reduction(&inst);
        assert_eq!(
            BoundedEvaluator::new(&q, 1).boolean(&db),
            inst.brute_force(),
            "seed {seed}"
        );
    }
    // And with k = 2 (more variables, still tractable for n = 2).
    for seed in 0..3u64 {
        let inst = reductions::random_hitting_set(2, 3, 1, 2, seed + 50);
        let (db, q) = reductions::theorem7_reduction(&inst);
        assert_eq!(
            BoundedEvaluator::new(&q, 1).boolean(&db),
            inst.brute_force(),
            "k=2 seed {seed}"
        );
    }
}

#[test]
fn reachability_reduction_sweep() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..10 {
        let n = 8;
        let edges: Vec<(usize, usize)> = (0..12)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let s = rng.random_range(0..n);
        let t = rng.random_range(0..n);
        // Ground truth by DFS.
        let mut seen = vec![false; n];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &(a, b) in &edges {
                if a == u && !seen[b] {
                    seen[b] = true;
                    stack.push(b);
                }
            }
        }
        let mut alpha = Alphabet::new();
        let (db, q) = reductions::reachability_reduction(n, &edges, s, t, &mut alpha);
        assert_eq!(CrpqEvaluator::new(&q).boolean(&db), seen[t]);
    }
}

#[test]
fn lemma12_translation_on_random_graphs() {
    for seed in 0..4u64 {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = graphs::random_labeled(alpha.clone(), 20, 40, seed);
        let mut a2 = db.alphabet().clone();
        let mut pattern = cxrpq::core::GraphPattern::new();
        let x = pattern.node("x");
        let y = pattern.node("y");
        let u = pattern.node("u");
        let v = pattern.node("v");
        let r1 = cxrpq_automata::parse_regex("a(a|b)*", &mut a2).unwrap();
        let r2 = cxrpq_automata::parse_regex("(a|b)*b", &mut a2).unwrap();
        pattern.add_edge(x, r1, y);
        pattern.add_edge(u, r2, v);
        let er = cxrpq::core::Ecrpq::new(
            pattern,
            vec![(cxrpq::core::RegularRelation::equality(2), vec![0, 1])],
            vec![x, y, u, v],
        )
        .unwrap();
        let translated = translate::ecrpq_er_to_cxrpq(&er).unwrap();
        let lhs = EcrpqEvaluator::new(&er).answers(&db);
        let rhs = VsfEvaluator::new(&translated).unwrap().answers(&db);
        assert_eq!(lhs, rhs, "seed {seed}");
    }
}

#[test]
fn lemma13_translation_round_trip() {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let db = graphs::random_labeled(alpha, 16, 32, 9);
    let mut a2 = db.alphabet().clone();
    let q = cxrpq::core::CxrpqBuilder::new(&mut a2)
        .edge("x", "z{ab|ba}z", "y")
        .edge("u", "z|aa", "v")
        .build()
        .unwrap();
    let direct = VsfEvaluator::new(&q).unwrap().boolean(&db);
    let union = translate::cxrpq_vsf_to_union_ecrpq_er(&q).unwrap();
    assert_eq!(direct, translate::union_ecrpq_boolean(&union, &db));
}

#[test]
fn lemma14_union_equivalence_on_random_graphs() {
    for seed in 0..3u64 {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = graphs::random_labeled(alpha.clone(), 16, 32, seed + 40);
        let mut a2 = db.alphabet().clone();
        let q = cxrpq::core::CxrpqBuilder::new(&mut a2)
            .edge("x", "z{(a|b)+}az", "y")
            .build()
            .unwrap();
        for k in 0..=2usize {
            let union = translate::cxrpq_bounded_to_union_crpq(&q, k, 2);
            assert_eq!(
                BoundedEvaluator::new(&q, k).boolean(&db),
                translate::union_crpq_boolean(&union, &db),
                "seed {seed} k {k}"
            );
        }
    }
}

#[test]
fn figure5_matrix_full() {
    // q_anbn — equal-length only.
    let mut alpha = Alphabet::from_chars("abcd");
    let q_anbn = witnesses::q_anbn(&mut alpha);
    for n in 0..5usize {
        for m in 0..5usize {
            let (db, _, _) = graphs::d_anbm(n, m);
            assert_eq!(
                EcrpqEvaluator::new(&q_anbn).boolean(&db),
                n == m,
                "q_anbn n={n} m={m}"
            );
        }
    }
    // q1 matrix.
    let mut alpha = Alphabet::from_chars("abcd");
    let q1 = witnesses::q1(&mut alpha);
    for s1 in ['a', 'b'] {
        for s2 in ['a', 'b', 'c'] {
            let db = witnesses::d_sigma(s1, s2);
            assert_eq!(
                BoundedEvaluator::new(&q1, 1).boolean(&db),
                s1 == s2 || s2 == 'c',
                "q1 {s1}/{s2}"
            );
        }
    }
}
