//! End-to-end checks of the paper's own worked examples, spanning all
//! crates: parsing, semantics oracles, and the evaluation engines.

use cxrpq::prelude::*;
use std::sync::Arc;

/// Builds a database with one labelled path per word; returns endpoints.
fn path_db(alpha: Arc<Alphabet>, words: &[&str]) -> (GraphDb, Vec<(NodeId, NodeId)>) {
    let mut db = GraphBuilder::new(alpha);
    let mut ends = Vec::new();
    for w in words {
        let s = db.add_node();
        let t = db.add_node();
        let word = db.alphabet().parse_word(w).unwrap();
        db.add_word_path(s, &word, t);
        ends.push((s, t));
    }
    (db.freeze(), ends)
}

#[test]
fn figure_2_g1_wildcard_correlation() {
    // G1: w -x{a|b}-> v1, w -(x|c)+-> v2 — "v1 has a direct a-predecessor
    // that has v2 as a transitive successor wrt a or c, or the same with b".
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut db = GraphBuilder::new(alpha);
    let (a, b, c) = (
        db.alphabet().sym("a"),
        db.alphabet().sym("b"),
        db.alphabet().sym("c"),
    );
    let w = db.add_node();
    let v1 = db.add_node();
    let p1 = db.add_node();
    let v2 = db.add_node();
    db.add_edge(w, a, v1);
    db.add_edge(w, a, p1);
    db.add_edge(p1, c, v2);
    // A b-predecessor whose continuation is an a-path (mismatch for x = b).
    let v1b = db.add_node();
    db.add_edge(w, b, v1b);
    let mut alpha2 = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut alpha2)
        .edge("w", "x{a|b}", "v1")
        .edge("w", "(x|c)+", "v2")
        .output(&["v1", "v2"])
        .build()
        .unwrap();
    // G1's variable image is necessarily a single letter, so CXRPQ^{≤1}
    // evaluation is exact (the paper notes exactly this).
    let db = db.freeze();
    let ans = BoundedEvaluator::new(&q, 1).answers(&db);
    assert!(ans.contains(&vec![v1, v2]));
    assert!(!ans.contains(&vec![v1b, v2]));
}

#[test]
fn figure_2_g4_mutually_exclusive_definitions() {
    // G4 has two definitions for z (z{x|y} ∨ z{a*}) in exclusive branches.
    let alpha = Arc::new(Alphabet::from_chars("abcd"));
    let mut alpha2 = (*alpha).clone();
    let q = CxrpqBuilder::new(&mut alpha2)
        .edge("v1", "a*(x{(ya*)|(b*y)})z", "v2")
        .edge("v1", "b*(y{c*|d*})", "v3")
        .edge("v3", "z{x|y}|z{a*}", "v2")
        .build()
        .unwrap();
    assert_eq!(q.fragment(), Fragment::VstarFree);
    // Plant: v1 -(c) ... x = y = c, z = x.
    //   edge1: a* x{ya*} z  with y=c: x = c, z = c  → word “cc”
    //   edge2: b* y{c*}     → word “c”
    //   edge3: z{x|y}       → word “c”
    let mut db = GraphBuilder::new(alpha);
    let c = db.alphabet().sym("c");
    let v1 = db.add_node();
    let m = db.add_node();
    let v2 = db.add_node();
    let v3 = db.add_node();
    db.add_edge(v1, c, m);
    db.add_edge(m, c, v2);
    db.add_edge(v1, c, v3);
    db.add_edge(v3, c, v2);
    let ev = VsfEvaluator::new(&q).unwrap();
    assert!(ev.boolean(&db.freeze()));
}

#[test]
fn example_2_match_and_nonmatch_via_engines() {
    // α = a*x1{a*x2{(a|b)*}b*a*}x2*(a|b)*x1 over {a,b}; the Example 2 word
    // and its engines-eye view on a path database.
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let word = format!("{}{}{}{}a", "aaaa", "baba", "ababab", "bababa");
    let (db, ends) = path_db(alpha, &[&word]);
    let mut alpha2 = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut alpha2)
        .edge("u", "a*x1{a*x2{(a|b)*}b*a*}x2*(a|b)*x1", "v")
        .output(&["u", "v"])
        .build()
        .unwrap();
    // The witnessing images are x1 = babaa / x2 = ba (|x1| = 5): k = 6
    // suffices; k = 3 does not admit any witnessing mapping for this word…
    // careful: a smaller witness could exist; we assert only the positive.
    assert!(BoundedEvaluator::new(&q, 6).check(&db, &[ends[0].0, ends[0].1]));
}

#[test]
fn conjunctive_example_from_section_3_1() {
    // γ̄ = ((x{a*}|b*)y, y{xaxb}by*) with the paper's conjunctive match
    // (aa·a⁵b, a⁵b·b·(a⁵b)²) — evaluated as a two-edge CXRPQ on two paths.
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let w1 = "aaaaaaab"; // aa · a⁵b
    let w2 = "aaaaabbaaaaabaaaaab"; // a⁵b · b · (a⁵b)²
    let (db, ends) = path_db(alpha, &[w1, w2]);
    let mut alpha2 = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut alpha2)
        .edge("p", "(x{a*}|b*)y", "q")
        .edge("r", "y{xaxb}by*", "s")
        .output(&["p", "q", "r", "s"])
        .build()
        .unwrap();
    let t = vec![ends[0].0, ends[0].1, ends[1].0, ends[1].1];
    // Images: x = aa (2), y = a⁵b (6) → k = 6.
    assert!(BoundedEvaluator::new(&q, 6).check(&db, &t));
    assert!(!BoundedEvaluator::new(&q, 4).check(&db, &t));
}

#[test]
fn figure_2_g3_hidden_communication_with_witness() {
    use cxrpq::core::engine::{AutoEvaluator, EngineKind};
    use cxrpq::workloads::messages;

    // A small message network with planted covert pairs (Figure 2 G3 / the
    // §1.1 motivating example).
    let net = messages::generate(10, 3, 6, 2, 5);
    let mut alpha = net.db.alphabet().clone();
    let q = messages::fig2_g3(&mut alpha);
    // G3 references variables under +, so the planner must fall back to the
    // bounded-image engine and flag the result as inexact.
    let auto = AutoEvaluator::new(&q);
    assert_eq!(auto.plan(), EngineKind::Bounded);
    assert!(!auto.is_exact());
    let answers = auto.answers(&net.db).value;
    for (v1, v2, _) in &net.planted {
        assert!(
            answers.contains(&vec![*v1, *v2]),
            "planted pair ({v1:?}, {v2:?}) not recalled"
        );
    }
    // A witness exists and its images have the planted code words' shape:
    // non-empty x and y of length ≤ 3 (the engine's default bound).
    let w = auto.witness(&net.db).value.expect("planted matches exist");
    w.verify(&net.db, q.pattern()).unwrap();
    assert_eq!(w.paths.len(), 4);
    let images: std::collections::HashMap<&str, usize> = w
        .images
        .iter()
        .map(|(n, img)| (n.as_str(), img.len()))
        .collect();
    assert!(images["x"] >= 1 && images["x"] <= 3);
    assert!(images["y"] >= 1 && images["y"] <= 3);
}

#[test]
fn xregex_matcher_agrees_with_bounded_engine_on_paths() {
    // For single-edge queries on a path database, Check((s,t)) coincides
    // with L^{≤k} string membership of the path label.
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let patterns = ["z{(a|b)+}cz", "x{a+}bx", "a*z{b}a*z"];
    let words = ["abcab", "aabaa", "aabab", "bb", "abba", "bab"];
    for p in patterns {
        for w in words {
            let (db, ends) = path_db(alpha.clone(), &[w]);
            let mut alpha2 = db.alphabet().clone();
            let q = CxrpqBuilder::new(&mut alpha2)
                .edge("u", p, "v")
                .output(&["u", "v"])
                .build()
                .unwrap();
            let via_engine = BoundedEvaluator::new(&q, 3).check(&db, &[ends[0].0, ends[0].1]);
            let (xr, vt) = parse_xregex(p, &mut db.alphabet().clone()).unwrap();
            let word = db.alphabet().parse_word(w).unwrap();
            let via_oracle = cxrpq::xregex::matcher::match_single(
                &xr,
                &word,
                vt.len(),
                &cxrpq::xregex::matcher::MatchConfig::bounded(3),
            )
            .unwrap()
            .is_some();
            assert_eq!(via_engine, via_oracle, "pattern {p} on {w}");
        }
    }
}
