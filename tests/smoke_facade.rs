//! Workspace smoke test: the whole facade pipeline in one pass.
//!
//! Builds a small [`GraphDb`], parses a CXRPQ from the concrete query-text
//! syntax, lets the `engine` planner pick an evaluator, and checks the
//! answer set, the chosen [`EngineKind`], exactness provenance, witness
//! certification, and the `render_query` round-trip.

use cxrpq::core::{parse_query, render_query, AutoEvaluator, EngineKind, EvalOptions};
use cxrpq::graph::{Alphabet, GraphBuilder, GraphDb, NodeId};
use cxrpq::xregex::matcher::MatchConfig;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Pairs connected by a path `w c w` for some `w ∈ (a|b)+` — the Section 1
/// motivating query, in the concrete syntax.
const QUERY: &str = "
# same (a|b)-word before and after the c edge
ans(u, v) <-
    (u) -[ z{(a|b)+}cz ]-> (v)
";

/// One matching path (`ab c ab`) and one decoy (`bb c aa`) that shares no
/// nonempty suffix/prefix across its `c` edge, so it contributes no answer.
fn build_db(alpha: Alphabet) -> (GraphDb, NodeId, NodeId) {
    let mut db = GraphBuilder::new(Arc::new(alpha));
    let ab = db.alphabet().parse_word("ab").unwrap();
    let c = db.alphabet().parse_word("c").unwrap();
    let u = db.add_node();
    let m1 = db.add_node();
    let m2 = db.add_node();
    let v = db.add_node();
    db.add_word_path(u, &ab, m1);
    db.add_word_path(m1, &c, m2);
    db.add_word_path(m2, &ab, v);

    let bb = db.alphabet().parse_word("bb").unwrap();
    let aa = db.alphabet().parse_word("aa").unwrap();
    let d1 = db.add_node();
    let d2 = db.add_node();
    let d3 = db.add_node();
    let d4 = db.add_node();
    db.add_word_path(d1, &bb, d2);
    db.add_word_path(d2, &c, d3);
    db.add_word_path(d3, &aa, d4);
    (db.freeze(), u, v)
}

#[test]
fn facade_pipeline_end_to_end() {
    let mut alpha = Alphabet::from_chars("abc");
    let q = parse_query(QUERY, &mut alpha).expect("query text parses");
    let (db, u, v) = build_db(alpha);
    let expected: BTreeSet<Vec<NodeId>> = std::iter::once(vec![u, v]).collect();

    // The planner must classify the query as simple-fragment and answer
    // exactly (Lemma 3).
    let ev = AutoEvaluator::new(&q);
    assert_eq!(ev.plan(), EngineKind::Simple);
    assert!(ev.is_exact());

    let answers = ev.answers(&db);
    assert_eq!(answers.engine, EngineKind::Simple);
    assert!(answers.exact);
    assert_eq!(answers.value, expected);

    let boolean = ev.boolean(&db);
    assert!(boolean.value);
    assert_eq!(boolean.engine, EngineKind::Simple);

    // The planner's witness certifies against the independent match oracle.
    let witness = ev
        .witness(&db)
        .value
        .expect("nonempty answer has a witness");
    assert!(q.certifies(&db, &witness, &MatchConfig::default()).is_ok());

    // Forcing the bounded-image engine (k ≥ the only image length, 2) must
    // reproduce the same relation through the Theorem 6 code path.
    let forced = AutoEvaluator::with_options(
        &q,
        EvalOptions {
            bounded_k: 3,
            force: Some(EngineKind::Bounded),
            governor: None,
            plan_seed: None,
        },
    )
    .expect("the bounded engine covers every fragment");
    let bounded = forced.answers(&db);
    assert_eq!(bounded.engine, EngineKind::Bounded);
    assert_eq!(bounded.value, expected);

    // render_query output re-parses to an equivalent query.
    let printed = render_query(&q, db.alphabet());
    let mut alpha2 = Alphabet::from_chars("abc");
    let q2 = parse_query(&printed, &mut alpha2).expect("rendered query re-parses");
    assert_eq!(AutoEvaluator::new(&q2).answers(&db).value, expected);
}
