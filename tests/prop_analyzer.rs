//! Differential property test for the static query analyzer.
//!
//! The analyzer ([`cxrpq::core::analyze`]) rewrites a query before any
//! search — dropping statically empty or subsumed atoms, unifying
//! ε-connected node variables, flagging Σ*-universal atoms — and the
//! rewrite must be **semantics-preserving**: analyzed and unanalyzed runs
//! must return identical results on every query family that reduces to the
//! shared constraint solver (CRPQs, simple CXRPQs, ECRPQs), for the
//! pipeline and the naive reference path, projected and full.
//!
//! The CRPQ generator injects the adversarial shapes the analyzer
//! explicitly targets: empty-language atoms (`!`), ε atoms and ε
//! self-loops (`_`), duplicated atoms (mutual containment), and
//! incomparable language pairs (no containment either way).

use cxrpq::automata::parse_regex;
use cxrpq::core::{
    Crpq, CrpqEvaluator, Cxrpq, Ecrpq, EcrpqEvaluator, GraphPattern, PipelineStats,
    RegularRelation, SimpleEvaluator, SolveOptions,
};
use cxrpq::graph::{Alphabet, GraphDb, NodeId};
use cxrpq::workloads::graphs::random_labeled;
use cxrpq::workloads::rand_queries::{random_classical, random_simple, QueryShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Debug builds pay ~10× on the product searches; keep CI-debug runs fast
/// and let release runs explore more of the space.
const CASES: u32 = if cfg!(debug_assertions) { 10 } else { 48 };

/// One evaluator façade: `answers`/`boolean`/`check` under explicit solver
/// options, so the three query families share the comparison harness.
trait Differential {
    fn answers(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>);
    fn boolean(&self, db: &GraphDb, opts: &SolveOptions) -> bool;
    fn check(&self, db: &GraphDb, tuple: &[NodeId], opts: &SolveOptions) -> bool;
}

impl Differential for CrpqEvaluator<'_> {
    fn answers(
        &self,
        db: &GraphDb,
        o: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>) {
        self.answers_opts(db, o)
    }
    fn boolean(&self, db: &GraphDb, o: &SolveOptions) -> bool {
        self.boolean_opts(db, o).0
    }
    fn check(&self, db: &GraphDb, t: &[NodeId], o: &SolveOptions) -> bool {
        self.check_opts(db, t, o).0
    }
}

impl Differential for SimpleEvaluator<'_> {
    fn answers(
        &self,
        db: &GraphDb,
        o: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>) {
        self.answers_opts(db, o)
    }
    fn boolean(&self, db: &GraphDb, o: &SolveOptions) -> bool {
        self.boolean_opts(db, o).0
    }
    fn check(&self, db: &GraphDb, t: &[NodeId], o: &SolveOptions) -> bool {
        self.check_opts(db, t, o).0
    }
}

impl Differential for EcrpqEvaluator<'_> {
    fn answers(
        &self,
        db: &GraphDb,
        o: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>) {
        self.answers_opts(db, o)
    }
    fn boolean(&self, db: &GraphDb, o: &SolveOptions) -> bool {
        self.boolean_opts(db, o).0
    }
    fn check(&self, db: &GraphDb, t: &[NodeId], o: &SolveOptions) -> bool {
        self.check_opts(db, t, o).0
    }
}

/// Asserts analyzed ≡ unanalyzed on one (query, database) pair across the
/// pipeline and naive paths, projected and full, and returns the analyzed
/// pipeline stats for shape-specific assertions.
fn assert_analyzer_agreement(
    ev: &dyn Differential,
    db: &GraphDb,
    rng: &mut StdRng,
    arity: usize,
) -> Option<PipelineStats> {
    let piped = SolveOptions::pipeline(); // analyze on
    let naive = SolveOptions::naive(); // analyze off — the reference
    let naive_analyzed = {
        let mut o = SolveOptions::naive();
        o.analyze = true;
        o
    };

    let (ans_ref, _) = ev.answers(db, &naive);
    let (ans_analyzed, stats) = ev.answers(db, &piped);
    assert_eq!(
        ans_ref, ans_analyzed,
        "analyzer changed the answer relation"
    );
    let (ans_plain, _) = ev.answers(db, &piped.clone().unanalyzed());
    assert_eq!(
        ans_ref, ans_plain,
        "unanalyzed pipeline disagrees with naive"
    );
    let (ans_naive_an, _) = ev.answers(db, &naive_analyzed);
    assert_eq!(
        ans_ref, ans_naive_an,
        "analyzer changed the naive answer relation"
    );
    let (ans_proj, _) = ev.answers(db, &piped.clone().projected());
    assert_eq!(
        ans_ref, ans_proj,
        "analyzer + projection pushdown changed the answer relation"
    );
    let (ans_proj_plain, _) = ev.answers(db, &piped.clone().projected().unanalyzed());
    assert_eq!(
        ans_ref, ans_proj_plain,
        "unanalyzed projection pushdown changed the answer relation"
    );

    let b = ev.boolean(db, &naive);
    assert_eq!(b, ev.boolean(db, &piped), "analyzer changed boolean()");
    assert_eq!(
        b,
        ev.boolean(db, &naive_analyzed),
        "analyzer changed naive boolean()"
    );
    assert_eq!(
        b,
        ev.boolean(db, &SolveOptions::early_exit()),
        "analyzed early-exit changed boolean()"
    );

    // check() on up to three real answers, one random tuple, and one tuple
    // with an out-of-range node id (must be false everywhere, no panic).
    let mut probes: Vec<Vec<NodeId>> = ans_ref.iter().take(3).cloned().collect();
    probes.push(
        (0..arity)
            .map(|_| NodeId(rng.random_range(0..db.node_count() as u32)))
            .collect(),
    );
    probes.push(vec![NodeId(db.node_count() as u32 + 7); arity]);
    for t in &probes {
        let expected = ans_ref.contains(t);
        assert_eq!(
            ev.check(db, t, &piped),
            expected,
            "analyzed check disagrees on {t:?}"
        );
        assert_eq!(
            ev.check(db, t, &piped.clone().unanalyzed()),
            expected,
            "unanalyzed check disagrees on {t:?}"
        );
        assert_eq!(
            ev.check(db, t, &naive_analyzed),
            expected,
            "analyzed naive check disagrees on {t:?}"
        );
    }
    stats
}

/// A random graph pattern over `vars` node variables with `edges` edges
/// labelled by component indices `0..edges`.
fn random_pattern(rng: &mut StdRng, vars: usize, edges: usize) -> GraphPattern<usize> {
    let mut pattern = GraphPattern::new();
    let nodes: Vec<_> = (0..vars).map(|i| pattern.node(&format!("n{i}"))).collect();
    for i in 0..edges {
        let s = nodes[rng.random_range(0..nodes.len())];
        let t = nodes[rng.random_range(0..nodes.len())];
        pattern.add_edge(s, i, t);
    }
    pattern
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Random CRPQs with the adversarial atoms the analyzer targets.
    #[test]
    fn crpq_analyzer_preserves_semantics(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = random_labeled(alpha, 5, 12, seed ^ 0xa11a);
        let edges = rng.random_range(2..=3usize);
        let mut pattern = random_pattern(&mut rng, 3, edges)
            .map_labels(|_, _| random_classical(&mut rng, 2, 2));
        let nodes = [
            pattern.node_var("n0").unwrap(),
            pattern.node_var("n1").unwrap(),
            pattern.node_var("n2").unwrap(),
        ];
        let mut a = Alphabet::from_chars("ab");
        let mut re = |s: &str| parse_regex(s, &mut a).unwrap();
        // Duplicated atom: mutual containment, exactly one copy survives.
        if rng.random_bool(0.5) {
            let s = nodes[rng.random_range(0..3usize)];
            let t = nodes[rng.random_range(0..3usize)];
            let l = random_classical(&mut rng, 2, 2);
            pattern.add_edge(s, l.clone(), t);
            pattern.add_edge(s, l, t);
        }
        // ε atom (sometimes a self-loop): variable unification.
        if rng.random_bool(0.4) {
            let s = nodes[rng.random_range(0..3usize)];
            let t = if rng.random_bool(0.5) { s } else { nodes[rng.random_range(0..3usize)] };
            pattern.add_edge(s, re("_"), t);
        }
        // Empty-language atom: statically unsatisfiable either way.
        if rng.random_bool(0.25) {
            let s = nodes[rng.random_range(0..3usize)];
            let t = nodes[rng.random_range(0..3usize)];
            pattern.add_edge(s, re("!"), t);
        }
        // Incomparable pair: neither contains the other, both must stay.
        if rng.random_bool(0.4) {
            let s = nodes[rng.random_range(0..3usize)];
            let t = nodes[rng.random_range(0..3usize)];
            pattern.add_edge(s, re("a(a|b)"), t);
            pattern.add_edge(s, re("(a|b)b"), t);
        }
        let q = Crpq::new(pattern, vec![nodes[0], nodes[1]]);
        let ev = CrpqEvaluator::new(&q);
        let stats = assert_analyzer_agreement(&ev, &db, &mut rng, 2);
        if let Some(s) = stats {
            prop_assert!(s.analysis.is_some(), "analyzed runs must report the analysis");
        }
    }

    /// Random simple CXRPQs: string-variable groups must survive the
    /// analyzer's per-member emptiness/footprint checks untouched.
    #[test]
    fn simple_cxrpq_analyzer_preserves_semantics(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = QueryShape { dims: 2, vars: 2, sigma: 2, alt_prob: 0.0 };
        let cx = random_simple(&mut rng, &shape);
        let pattern = random_pattern(&mut rng, 3, shape.dims);
        let out0 = pattern.node_var("n0").unwrap();
        let out1 = pattern.node_var("n1").unwrap();
        let q = Cxrpq::from_parts(pattern, cx, vec![out0, out1]);
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = random_labeled(alpha, 4, 10, seed ^ 0x51e5);
        let ev = SimpleEvaluator::new(&q).expect("generated queries are simple");
        assert_analyzer_agreement(&ev, &db, &mut rng, 2);
    }

    /// Random ECRPQs with adversarial *free* atoms alongside the
    /// relation-constrained group.
    #[test]
    fn ecrpq_analyzer_preserves_semantics(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = random_labeled(alpha, 4, 10, seed ^ 0xeca);
        let mut pattern = random_pattern(&mut rng, 3, 3)
            .map_labels(|_, _| random_classical(&mut rng, 2, 2));
        let nodes = [
            pattern.node_var("n0").unwrap(),
            pattern.node_var("n1").unwrap(),
            pattern.node_var("n2").unwrap(),
        ];
        let mut a = Alphabet::from_chars("ab");
        let mut re = |s: &str| parse_regex(s, &mut a).unwrap();
        if rng.random_bool(0.4) {
            let s = nodes[rng.random_range(0..3usize)];
            pattern.add_edge(s, re("_"), nodes[rng.random_range(0..3usize)]);
        }
        if rng.random_bool(0.25) {
            let s = nodes[rng.random_range(0..3usize)];
            pattern.add_edge(s, re("!"), nodes[rng.random_range(0..3usize)]);
        }
        let rel = if rng.random_bool(0.5) {
            RegularRelation::equality(2)
        } else {
            RegularRelation::equal_length(2)
        };
        let q = Ecrpq::new(pattern, vec![(rel, vec![0, 1])], vec![nodes[0], nodes[1]])
            .expect("well-formed relation tuple");
        let ev = EcrpqEvaluator::new(&q);
        assert_analyzer_agreement(&ev, &db, &mut rng, 2);
    }
}

/// A fixed worst-case composite — ε self-loop, ε bridge, duplicated atom,
/// incomparable pair, and a subsumed wider atom, all in one query. The
/// analyzer must drop exactly the redundant atoms, merge exactly the
/// ε-bridged pair, and leave the answers untouched.
#[test]
fn composite_adversarial_crpq_agrees_and_reports() {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let db = random_labeled(alpha, 6, 18, 0xbead);
    let mut a = Alphabet::from_chars("ab");
    let q = Crpq::build(
        &[
            ("x", "ab*", "y"),
            ("x", "ab*", "y"),     // duplicate of the previous atom
            ("x", "(a|b)b*", "y"), // strictly wider: subsumed by ab*
            ("y", "_", "z"),       // ε bridge: y and z unify
            ("z", "_", "z"),       // ε self-loop: trivially dropped
            ("x", "a(a|b)", "z"),  // incomparable pair: both stay
            ("x", "(a|b)b", "z"),
        ],
        &["x", "y", "z"],
        &mut a,
    )
    .unwrap();
    let ev = CrpqEvaluator::new(&q);
    let mut rng = StdRng::seed_from_u64(3);
    let stats = assert_analyzer_agreement(&ev, &db, &mut rng, 3)
        .expect("free-edge query records pipeline stats");
    let report = stats
        .analysis
        .as_ref()
        .expect("analyzed run reports analysis");
    // One duplicate + one wider atom + two ε atoms dropped; y/z merged.
    assert_eq!(report.stats.atoms_dropped, 4);
    assert_eq!(report.stats.vars_merged, 1);
    assert!(!report.stats.unsat);
}

/// A statically empty atom refutes the query with zero search on the
/// analyzed path while the unanalyzed reference still agrees.
#[test]
fn statically_empty_composite_agrees() {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let db = random_labeled(alpha, 5, 12, 0xdead);
    let mut a = Alphabet::from_chars("ab");
    let q = Crpq::build(&[("x", "a*b", "y"), ("y", "!", "z")], &["x", "y"], &mut a).unwrap();
    let ev = CrpqEvaluator::new(&q);
    let mut rng = StdRng::seed_from_u64(5);
    let stats = assert_analyzer_agreement(&ev, &db, &mut rng, 2)
        .expect("analyzed run records pipeline stats");
    assert_eq!(stats.backtrack_steps, 0, "refutation must be search-free");
    let report = stats.analysis.as_ref().unwrap();
    assert!(report.stats.unsat);
}
