//! Differential property test for the plan/prune/enumerate solver pipeline.
//!
//! The pipeline ([`SolveOptions::pipeline`]) must return results identical
//! to the retained naive-order reference path ([`SolveOptions::naive`] —
//! query-text join order, no domain pruning) on every query family that
//! reduces to the shared constraint solver:
//!
//! - random **CRPQs** (free edges only),
//! - random **simple CXRPQs** (equality groups per string variable,
//!   Lemma 3),
//! - random **ECRPQs** (regular-relation groups),
//!
//! over random multigraphs, comparing `answers()` byte-for-byte and
//! `boolean()`/`check()` across the naive, full-pipeline,
//! early-exit-capped and **projection-pushdown** configurations — the
//! pushdown-projected answer relation must equal the naive
//! full-enumerate-then-project reference on every family (with and without
//! plan/prune, so the dynamic existential cutoff is exercised on both
//! paths) — including `check` on out-of-range node ids (which must be
//! quietly empty, never a panic). Dedicated cases drive the adversarial
//! long-chain shape where the adaptive probe must route prune fills to
//! per-source sweeps, and the dedup-correctness edge case where an output
//! variable is also the last shared variable of the plan order.

use cxrpq::core::{
    Crpq, CrpqEvaluator, Cxrpq, Ecrpq, EcrpqEvaluator, GraphPattern, PipelineStats,
    RegularRelation, SimpleEvaluator, SolveOptions,
};
use cxrpq::graph::{Alphabet, GraphDb, NodeId, Symbol};
use cxrpq::workloads::graphs::{labeled_path, random_labeled};
use cxrpq::workloads::rand_queries::{random_classical, random_simple, QueryShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Debug builds pay ~10× on the product searches; keep CI-debug runs fast
/// and let release runs explore more of the space.
const CASES: u32 = if cfg!(debug_assertions) { 10 } else { 48 };

/// One evaluator façade: `answers`/`boolean`/`check` under explicit solver
/// options, so the three query families share the comparison harness.
trait Differential {
    fn answers(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>);
    fn boolean(&self, db: &GraphDb, opts: &SolveOptions) -> bool;
    fn check(&self, db: &GraphDb, tuple: &[NodeId], opts: &SolveOptions) -> bool;
}

impl Differential for CrpqEvaluator<'_> {
    fn answers(
        &self,
        db: &GraphDb,
        o: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>) {
        self.answers_opts(db, o)
    }
    fn boolean(&self, db: &GraphDb, o: &SolveOptions) -> bool {
        self.boolean_opts(db, o).0
    }
    fn check(&self, db: &GraphDb, t: &[NodeId], o: &SolveOptions) -> bool {
        self.check_opts(db, t, o).0
    }
}

impl Differential for SimpleEvaluator<'_> {
    fn answers(
        &self,
        db: &GraphDb,
        o: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>) {
        self.answers_opts(db, o)
    }
    fn boolean(&self, db: &GraphDb, o: &SolveOptions) -> bool {
        self.boolean_opts(db, o).0
    }
    fn check(&self, db: &GraphDb, t: &[NodeId], o: &SolveOptions) -> bool {
        self.check_opts(db, t, o).0
    }
}

impl Differential for EcrpqEvaluator<'_> {
    fn answers(
        &self,
        db: &GraphDb,
        o: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>) {
        self.answers_opts(db, o)
    }
    fn boolean(&self, db: &GraphDb, o: &SolveOptions) -> bool {
        self.boolean_opts(db, o).0
    }
    fn check(&self, db: &GraphDb, t: &[NodeId], o: &SolveOptions) -> bool {
        self.check_opts(db, t, o).0
    }
}

/// Asserts naive ≡ pipeline ≡ early-exit on one (query, database) pair and
/// returns the pipeline stats for shape-specific assertions. `arity` is the
/// query's output arity, so the random and out-of-range `check` probes run
/// even when the answer relation is empty.
fn assert_agreement(
    ev: &dyn Differential,
    db: &GraphDb,
    rng: &mut StdRng,
    arity: usize,
) -> Option<PipelineStats> {
    let naive = SolveOptions::naive();
    let piped = SolveOptions::pipeline();
    let early = SolveOptions::early_exit();

    let (ans_naive, no_stats) = ev.answers(db, &naive);
    assert!(
        no_stats.is_none(),
        "naive runs must not report pipeline stats"
    );
    let (ans_piped, stats) = ev.answers(db, &piped);
    assert_eq!(ans_naive, ans_piped, "pipeline changed the answer relation");
    // Projection pushdown (existential elimination + enumerator dedup) must
    // reproduce the full-enumerate-then-project reference — both on top of
    // the pipeline and on the bare naive path (no plan, no domains), which
    // isolates the dynamic cutoff logic.
    let (ans_proj, _) = ev.answers(db, &piped.clone().projected());
    assert_eq!(
        ans_naive, ans_proj,
        "projection pushdown changed the answer relation"
    );
    let (ans_proj_naive, _) = ev.answers(db, &naive.clone().projected());
    assert_eq!(
        ans_naive, ans_proj_naive,
        "unplanned projection pushdown changed the answer relation"
    );

    let b_naive = ev.boolean(db, &naive);
    assert_eq!(
        b_naive,
        ev.boolean(db, &piped),
        "pipeline changed boolean()"
    );
    assert_eq!(
        b_naive,
        ev.boolean(db, &early),
        "early-exit cap changed boolean()"
    );
    assert_eq!(
        b_naive,
        ev.boolean(db, &early.clone().projected()),
        "all-existential boolean fast path changed boolean()"
    );

    // check() on up to three real answers, one random tuple, and one tuple
    // with an out-of-range node id (must be false everywhere, no panic —
    // probed on unsatisfiable queries too).
    let mut probes: Vec<Vec<NodeId>> = ans_naive.iter().take(3).cloned().collect();
    probes.push(
        (0..arity)
            .map(|_| NodeId(rng.random_range(0..db.node_count() as u32)))
            .collect(),
    );
    probes.push(vec![NodeId(db.node_count() as u32 + 7); arity]);
    for t in &probes {
        let expected = ans_naive.contains(t);
        assert_eq!(
            ev.check(db, t, &naive),
            expected,
            "naive check disagrees on {t:?}"
        );
        assert_eq!(
            ev.check(db, t, &piped),
            expected,
            "piped check disagrees on {t:?}"
        );
        assert_eq!(
            ev.check(db, t, &early),
            expected,
            "early check disagrees on {t:?}"
        );
        assert_eq!(
            ev.check(db, t, &early.clone().projected()),
            expected,
            "projected check disagrees on {t:?}"
        );
    }
    stats
}

/// A random graph pattern over `vars` node variables with `edges` edges
/// labelled by component indices `0..edges`.
fn random_pattern(rng: &mut StdRng, vars: usize, edges: usize) -> GraphPattern<usize> {
    let mut pattern = GraphPattern::new();
    let nodes: Vec<_> = (0..vars).map(|i| pattern.node(&format!("n{i}"))).collect();
    for i in 0..edges {
        let s = nodes[rng.random_range(0..nodes.len())];
        let t = nodes[rng.random_range(0..nodes.len())];
        pattern.add_edge(s, i, t);
    }
    pattern
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn crpq_pipeline_matches_naive(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = random_labeled(alpha, 5, 12, seed ^ 0x5eed);
        let edges = rng.random_range(2..=3usize);
        let pattern = random_pattern(&mut rng, 3, edges)
            .map_labels(|_, _| random_classical(&mut rng, 2, 2));
        let out0 = pattern.node_var("n0").unwrap();
        let out1 = pattern.node_var("n1").unwrap();
        let q = Crpq::new(pattern, vec![out0, out1]);
        let ev = CrpqEvaluator::new(&q);
        let stats = assert_agreement(&ev, &db, &mut rng, 2);
        if let Some(s) = stats {
            // A 5-node random multigraph is nowhere near long-diameter.
            prop_assert!(!s.per_source_sweeps);
            prop_assert!(s.total_after() <= s.total_before());
        }
    }

    #[test]
    fn simple_cxrpq_pipeline_matches_naive(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = QueryShape { dims: 2, vars: 2, sigma: 2, alt_prob: 0.0 };
        let cx = random_simple(&mut rng, &shape);
        let pattern = random_pattern(&mut rng, 3, shape.dims);
        let out0 = pattern.node_var("n0").unwrap();
        let out1 = pattern.node_var("n1").unwrap();
        let q = Cxrpq::from_parts(pattern, cx, vec![out0, out1]);
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = random_labeled(alpha, 4, 10, seed ^ 0x9e37_79b9);
        let ev = SimpleEvaluator::new(&q).expect("generated queries are simple");
        assert_agreement(&ev, &db, &mut rng, 2);
    }

    #[test]
    fn ecrpq_pipeline_matches_naive(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = random_labeled(alpha, 4, 10, seed ^ 0xec);
        // Three edges; the first two constrained by a regular relation.
        let pattern = random_pattern(&mut rng, 3, 3)
            .map_labels(|_, _| random_classical(&mut rng, 2, 2));
        let rel = if rng.random_bool(0.5) {
            RegularRelation::equality(2)
        } else {
            RegularRelation::equal_length(2)
        };
        let out0 = pattern.node_var("n0").unwrap();
        let out1 = pattern.node_var("n1").unwrap();
        let q = Ecrpq::new(pattern, vec![(rel, vec![0, 1])], vec![out0, out1])
            .expect("well-formed relation tuple");
        let ev = EcrpqEvaluator::new(&q);
        assert_agreement(&ev, &db, &mut rng, 2);
    }
}

/// The adversarial shape from the ROADMAP's "adaptive batching" item: on a
/// long-diameter chain, batched wavefront fills lose to per-source sweeps
/// (staggered membership arrivals re-expand cells), so the prune probe must
/// route per-source — and the answers must not change either way.
#[test]
fn long_chain_routes_per_source_sweeps_and_agrees() {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let word: Vec<Symbol> = alpha.parse_word(&"ab".repeat(60)).unwrap();
    let (db, _, _) = labeled_path(alpha, &word); // 121 nodes, diameter 120
    let mut rng = StdRng::seed_from_u64(7);

    let mut pattern = GraphPattern::new();
    let x = pattern.node("x");
    let y = pattern.node("y");
    let z = pattern.node("z");
    pattern.add_edge(x, 0usize, y);
    pattern.add_edge(y, 1usize, z);
    let mut a2 = db.alphabet().clone();
    let re = |a: &mut Alphabet, s: &str| cxrpq::automata::parse_regex(s, a).unwrap();
    let labels = [re(&mut a2, "(ab)+"), re(&mut a2, "a(ba)*b")];
    let pattern = pattern.map_labels(|i, _| labels[i].clone());
    let q = Crpq::new(pattern, vec![x, z]);
    let ev = CrpqEvaluator::new(&q);

    let stats =
        assert_agreement(&ev, &db, &mut rng, 2).expect("free-edge query records pipeline stats");
    assert!(
        stats.per_source_sweeps,
        "long-diameter chain must route prune fills to per-source sweeps"
    );
    assert!(stats.rounds >= 1);
}

/// The dedup-correctness edge case called out in the plan's projection
/// split: the output variable `z` is also the *last shared variable* — it
/// closes two constraints at the end of the plan order, and the non-output
/// middle variable `y` is bound before it. Distinct `y`-branches then reach
/// identical `(x, z)` projections, which the enumerator must emit exactly
/// once while still reporting every distinct tuple.
#[test]
fn output_as_last_shared_variable_dedups_correctly() {
    // Diamond fan: s -a-> {m1, m2} -b-> {t1, t2}, plus s -c-> t1 so the
    // join edge (x, c, z) shares z with the chain's last hop.
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let (db, names) = {
        let mut b = cxrpq::graph::GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let bb = b.alphabet().sym("b");
        let c = b.alphabet().sym("c");
        let s = b.add_node();
        let m1 = b.add_node();
        let m2 = b.add_node();
        let t1 = b.add_node();
        let t2 = b.add_node();
        b.add_edge(s, a, m1);
        b.add_edge(s, a, m2);
        b.add_edge(m1, bb, t1);
        b.add_edge(m2, bb, t1);
        b.add_edge(m2, bb, t2);
        b.add_edge(s, c, t1);
        (b.freeze(), (s, t1, t2))
    };
    let mut alpha2 = db.alphabet().clone();
    let q = Crpq::build(
        &[("x", "a", "y"), ("y", "b", "z"), ("x", "c", "z")],
        &["x", "z"],
        &mut alpha2,
    )
    .unwrap();
    let ev = CrpqEvaluator::new(&q);
    let (naive, _) = ev.answers_opts(&db, &SolveOptions::naive());
    let (projected, _) = ev.answers_opts(&db, &SolveOptions::pipeline().projected());
    assert_eq!(naive, projected);
    // Both a-branches reach t1, but only via the c-edge-consistent pair.
    let (s, t1, _) = names;
    assert_eq!(naive, BTreeSet::from([vec![s, t1]]));
    let mut rng = StdRng::seed_from_u64(11);
    assert_agreement(&ev, &db, &mut rng, 2);
}
