//! Property-based consistency tests between the executable semantics
//! (backtracking oracles, samplers) and the evaluation engines.

use cxrpq::core::{BoundedEvaluator, CxrpqBuilder, SimpleEvaluator, VsfEvaluator};
use cxrpq::graph::{Alphabet, GraphBuilder, NodeId, Symbol};
use cxrpq::workloads::rand_queries::{random_vstar_free, QueryShape};
use cxrpq::xregex::matcher::MatchConfig;
use cxrpq::xregex::normal_form::normal_form;
use cxrpq::xregex::sample::{sample_conjunctive_match, SampleConfig};
use cxrpq::xregex::specialize::{specialize, VarMapping};
use cxrpq_automata::Nfa;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn word_strategy(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec(0u32..2, 0..=max_len)
        .prop_map(|v| v.into_iter().map(Symbol).collect())
}

/// Debug builds run the exponential oracles ~10× slower; keep CI-debug runs
/// fast and let release runs explore more of the space.
const CASES: u32 = if cfg!(debug_assertions) { 6 } else { 48 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Sampled conjunctive matches of random vstar-free queries are
    /// accepted by the normal form (language preservation, Theorem 4).
    /// The backtracking oracle is exponential; instances where it runs out
    /// of fuel are skipped (the oracle reports fuel exhaustion rather than
    /// answer unsoundly).
    #[test]
    fn normal_form_preserves_random_matches(seed in 0u64..5_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cx = random_vstar_free(&mut rng, &QueryShape {
            dims: 2, vars: 2, sigma: 2, alt_prob: 0.25,
        });
        let (nf, _) = normal_form(&cx).unwrap();
        let cfg = SampleConfig { rep_continue: 0.4, max_reps: 2, free_image_max: 1 };
        let check = |hay: &cxrpq::xregex::ConjunctiveXregex, words: &[Vec<Symbol>]| {
            // None = oracle fuel exhausted → skip this direction.
            hay.try_is_match(words, &MatchConfig::default())
                .map(|r| r.is_some())
        };
        if let Some((words, _)) = sample_conjunctive_match(&cx, 2, &cfg, &mut rng) {
            if let Some(accepted) = check(&nf, &words) {
                prop_assert!(accepted, "normal form lost a sampled match");
            }
        }
        if let Some((words, _)) = sample_conjunctive_match(&nf, 2, &cfg, &mut rng) {
            if let Some(accepted) = check(&cx, &words) {
                prop_assert!(accepted, "normal form gained a match");
            }
        }
    }

    /// Lemma 10 specialization agrees with the pinned-mapping oracle on
    /// random words and random small mappings.
    #[test]
    fn specialization_agrees_with_pinned_oracle(
        seed in 0u64..3_000,
        w1 in word_strategy(4),
        w2 in word_strategy(4),
        img in word_strategy(2),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cx = random_vstar_free(&mut rng, &QueryShape {
            dims: 2, vars: 1, sigma: 2, alt_prob: 0.4,
        });
        let x = cx.vars().var("x0").unwrap();
        let psi: VarMapping = [(x, img)].into_iter().collect();
        let via_beta = match specialize(&cx, &psi) {
            None => false,
            Some(regexes) => {
                Nfa::from_regex(&regexes[0]).accepts(&w1)
                    && Nfa::from_regex(&regexes[1]).accepts(&w2)
            }
        };
        let via_oracle = cx
            .is_match(&[w1, w2], &MatchConfig::pinned(psi))
            .unwrap()
            .is_some();
        prop_assert_eq!(via_beta, via_oracle);
    }

    /// The bounded evaluator agrees with the L^{≤k} matcher oracle on
    /// single-edge queries over path databases.
    #[test]
    fn bounded_engine_matches_string_oracle(word in word_strategy(7)) {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t = if word.is_empty() { s } else { db.add_node() };
        if !word.is_empty() {
            db.add_word_path(s, &word, t);
        }
        let db = db.freeze();
        let mut a2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut a2)
            .edge("u", "x{(a|b)+}bx", "v")
            .output(&["u", "v"])
            .build()
            .unwrap();
        let engine = BoundedEvaluator::new(&q, 3).check(&db, &[s, t]);
        let (xr, vt) = cxrpq::xregex::parse_xregex("x{(a|b)+}bx", &mut db.alphabet().clone()).unwrap();
        let oracle = cxrpq::xregex::matcher::match_single(
            &xr, &word, vt.len(), &MatchConfig::bounded(3)).unwrap().is_some();
        prop_assert_eq!(engine, oracle);
    }
}

/// Deterministic cross-engine agreement: vsf vs bounded on small planted
/// databases (images in these queries never exceed 2, so CXRPQ^{≤2}
/// evaluation is exact for them).
#[test]
fn engines_agree_on_small_vsf_queries() {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let mut rng = StdRng::seed_from_u64(77);
    let words = ["abab", "ab", "ba", "aabb", "bb", "aa"];
    let mut db = GraphBuilder::new(alpha);
    let mut _ends: Vec<(NodeId, NodeId)> = Vec::new();
    for w in words {
        let s = db.add_node();
        let t = db.add_node();
        let word = db.alphabet().parse_word(w).unwrap();
        db.add_word_path(s, &word, t);
        _ends.push((s, t));
    }
    let db = db.freeze();
    for round in 0..14 {
        let cx = random_vstar_free(
            &mut rng,
            &QueryShape {
                dims: 2,
                vars: 2,
                sigma: 2,
                alt_prob: 0.3,
            },
        );
        // Skip shapes whose synchronized product is exponential by design
        // (Theorem 2 is ExpSpace in combined complexity): a variable with
        // g occurrences costs |V|^g product states in the vsf engine.
        let occurrences_bounded = cx.vars().vars().all(|x| {
            let occ: usize = cx
                .components()
                .iter()
                .map(|c| c.def_count(x) + c.ref_count(x))
                .sum();
            occ <= 3
        });
        if !occurrences_bounded {
            continue;
        }
        let mut pattern = cxrpq::core::GraphPattern::new();
        let u = pattern.node("u");
        let v = pattern.node("v");
        let w = pattern.node("w");
        pattern.add_edge(u, 0usize, v);
        pattern.add_edge(v, 1usize, w);
        let q = cxrpq::core::Cxrpq::from_parts(pattern, cx, vec![]);
        let vsf = VsfEvaluator::new(&q).unwrap().boolean(&db);
        // The implications below hold for *every* k (⊨_{≤k} under-approximates
        // ⊨), so a small k keeps the test sound while staying fast.
        let bounded = BoundedEvaluator::new(&q, 2).boolean(&db);
        // vsf is exact; bounded is a lower bound; they agree when bounded
        // finds a match, and when vsf finds none.
        if bounded {
            assert!(vsf, "round {round}: bounded found a match vsf missed");
        }
        if !vsf {
            assert!(!bounded, "round {round}: impossible");
        }
    }
}

/// Simple-engine vs bounded-engine agreement on simple queries with small
/// witnesses.
#[test]
fn simple_engine_agrees_with_bounded() {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut db = GraphBuilder::new(alpha);
    for w in ["abcab", "aab", "cc", "abab", "bcb"] {
        let s = db.add_node();
        let t = db.add_node();
        let word = db.alphabet().parse_word(w).unwrap();
        db.add_word_path(s, &word, t);
    }
    let db = db.freeze();
    for pattern in ["z{(a|b)+}cz", "x{a+}bx", "z{ab}z", "a*z{b+}c"] {
        let mut a2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut a2)
            .edge("u", pattern, "v")
            .build()
            .unwrap();
        let simple = SimpleEvaluator::new(&q).unwrap().boolean(&db);
        let bounded = BoundedEvaluator::new(&q, 5).boolean(&db);
        assert_eq!(simple, bounded, "pattern {pattern}");
    }
}
