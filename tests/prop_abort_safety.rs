//! Abort-safety property suite for the resource governor.
//!
//! For random instances of every query family that reduces to the shared
//! constraint solver (CRPQ, simple CXRPQ, ECRPQ), and for every solver
//! configuration (naive/pipeline × full/projected enumeration), aborting
//! the solve at an arbitrary checkpoint must be *safe*:
//!
//! 1. **Soundness** — the partial answer relation of an aborted run is a
//!    subset of the complete relation (aborts only under-approximate; no
//!    spurious tuples, ever).
//! 2. **Verdict** — an injected abort is reported as `Aborted(Injected)`,
//!    and a run whose governor never trips stays `Complete` with answers
//!    identical to the ungoverned run.
//! 3. **Hygiene** — re-solving ungoverned on the *same* evaluator after an
//!    abort returns exactly the fresh-solve relation (no partial cache
//!    stripe or stale state survives the abort).
//!
//! The abort points are exact: a dry governed run counts the checkpoints
//! the instance passes, then fault injection trips the governor at sampled
//! 1-based checkpoint indices across that range. Checkpoint totals are not
//! reproducible for projected solves (witness searches early-exit out of
//! hash-ordered reach sets), so an injection index beyond what a given run
//! reaches legitimately leaves the governor untripped — such runs must be
//! indistinguishable from ungoverned ones.

use cxrpq::core::{
    AbortReason, Crpq, CrpqEvaluator, Cxrpq, Ecrpq, EcrpqEvaluator, Governor, GraphPattern,
    RegularRelation, SimpleEvaluator, SolveOptions, Verdict,
};
use cxrpq::graph::{Alphabet, GraphDb, NodeId};
use cxrpq::workloads::graphs::random_labeled;
use cxrpq::workloads::rand_queries::{random_classical, random_simple, QueryShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Debug builds pay ~10× on the product searches; keep CI-debug runs fast
/// and let release runs explore more of the space.
const CASES: u32 = if cfg!(debug_assertions) { 8 } else { 32 };

/// Abort points sampled per (instance, configuration) pair.
const INJECTIONS: usize = 3;

/// The solver configurations every family is probed under.
fn configurations() -> [SolveOptions; 4] {
    [
        SolveOptions::naive(),
        SolveOptions::naive().projected(),
        SolveOptions::pipeline(),
        SolveOptions::pipeline().projected(),
    ]
}

/// Drives the three properties for one evaluator (behind a closure so the
/// same instance is re-solved after aborts — the hygiene check).
fn assert_abort_safety(
    solve: &dyn Fn(&SolveOptions) -> BTreeSet<Vec<NodeId>>,
    rng: &mut StdRng,
) -> Result<(), TestCaseError> {
    for base in configurations() {
        let complete = solve(&base);

        // Dry governed run: counts checkpoints and must change nothing.
        let dry = Arc::new(Governor::unlimited());
        let governed = solve(&base.clone().governed(dry.clone()));
        prop_assert_eq!(dry.verdict(), Verdict::Complete);
        prop_assert_eq!(
            &governed,
            &complete,
            "an untripped governor changed the answers"
        );

        let seen = dry.checkpoints_seen();
        if seen == 0 {
            continue;
        }
        for probe in 0..INJECTIONS {
            // Always cover the first and last checkpoint; sample between.
            let k = match probe {
                0 => 1,
                1 => seen,
                _ => rng.random_range(1..=seen),
            };
            let gov = Arc::new(Governor::unlimited().with_injection(k));
            let partial = solve(&base.clone().governed(gov.clone()));
            if gov.abort_reason().is_none() {
                // Projected witness searches early-exit out of hash-ordered
                // reach sets, so the amount of governed work varies run to
                // run and a high injection index can overshoot this run's
                // checkpoint count. The governor then never trips and the
                // run must be indistinguishable from an ungoverned solve.
                prop_assert_eq!(gov.verdict(), Verdict::Complete);
                prop_assert_eq!(
                    &partial,
                    &complete,
                    "untripped injection at {}/{} changed the answers",
                    k,
                    seen
                );
                continue;
            }
            prop_assert_eq!(gov.abort_reason(), Some(AbortReason::Injected));
            prop_assert!(
                partial.is_subset(&complete),
                "abort at checkpoint {}/{} produced tuples outside the \
                 complete relation: {:?} ⊄ {:?}",
                k,
                seen,
                partial,
                complete
            );
            // Hygiene: the same evaluator, ungoverned again, recovers the
            // full relation — nothing partial leaked into a cache.
            let repeat = solve(&base);
            prop_assert_eq!(
                &repeat,
                &complete,
                "re-solve after abort at checkpoint {}/{} diverged from the \
                 fresh solve",
                k,
                seen
            );
        }
    }
    Ok(())
}

/// A random graph pattern over `vars` node variables with `edges` edges
/// labelled by component indices `0..edges`.
fn random_pattern(rng: &mut StdRng, vars: usize, edges: usize) -> GraphPattern<usize> {
    let mut pattern = GraphPattern::new();
    let nodes: Vec<_> = (0..vars).map(|i| pattern.node(&format!("n{i}"))).collect();
    for i in 0..edges {
        let s = nodes[rng.random_range(0..nodes.len())];
        let t = nodes[rng.random_range(0..nodes.len())];
        pattern.add_edge(s, i, t);
    }
    pattern
}

fn random_db(seed: u64, salt: u64) -> GraphDb {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    random_labeled(alpha, 5, 12, seed ^ salt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn crpq_aborts_are_safe(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = random_db(seed, 0xab57);
        let edges = rng.random_range(2..=3usize);
        let pattern = random_pattern(&mut rng, 3, edges)
            .map_labels(|_, _| random_classical(&mut rng, 2, 2));
        let out0 = pattern.node_var("n0").unwrap();
        let out1 = pattern.node_var("n1").unwrap();
        let q = Crpq::new(pattern, vec![out0, out1]);
        let ev = CrpqEvaluator::new(&q);
        assert_abort_safety(&|o| ev.answers_opts(&db, o).0, &mut rng)?;
    }

    #[test]
    fn simple_cxrpq_aborts_are_safe(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = QueryShape { dims: 2, vars: 2, sigma: 2, alt_prob: 0.0 };
        let cx = random_simple(&mut rng, &shape);
        let pattern = random_pattern(&mut rng, 3, shape.dims);
        let out0 = pattern.node_var("n0").unwrap();
        let out1 = pattern.node_var("n1").unwrap();
        let q = Cxrpq::from_parts(pattern, cx, vec![out0, out1]);
        let db = random_db(seed, 0xc04b_1d22);
        let ev = SimpleEvaluator::new(&q).expect("generated queries are simple");
        assert_abort_safety(&|o| ev.answers_opts(&db, o).0, &mut rng)?;
    }

    #[test]
    fn ecrpq_aborts_are_safe(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = random_db(seed, 0xeca1);
        let pattern = random_pattern(&mut rng, 3, 3)
            .map_labels(|_, _| random_classical(&mut rng, 2, 2));
        let rel = if rng.random_bool(0.5) {
            RegularRelation::equality(2)
        } else {
            RegularRelation::equal_length(2)
        };
        let out0 = pattern.node_var("n0").unwrap();
        let out1 = pattern.node_var("n1").unwrap();
        let q = Ecrpq::new(pattern, vec![(rel, vec![0, 1])], vec![out0, out1])
            .expect("well-formed relation tuple");
        let ev = EcrpqEvaluator::new(&q);
        assert_abort_safety(&|o| ev.answers_opts(&db, o).0, &mut rng)?;
    }

    /// Boolean early-exit under injected aborts: `false` may stand for an
    /// unexplored `true` (sound under-approximation), but `true` must imply
    /// a genuine match — and the verdict must say which case applies.
    #[test]
    fn boolean_aborts_never_invent_matches(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = random_db(seed, 0xb001);
        let pattern = random_pattern(&mut rng, 3, 2)
            .map_labels(|_, _| random_classical(&mut rng, 2, 2));
        let out0 = pattern.node_var("n0").unwrap();
        let q = Crpq::new(pattern, vec![out0]);
        let ev = CrpqEvaluator::new(&q);
        let complete = ev.boolean_opts(&db, &SolveOptions::early_exit()).0;
        let dry = Arc::new(Governor::unlimited());
        let _ = ev.boolean_opts(&db, &SolveOptions::early_exit().governed(dry.clone()));
        let seen = dry.checkpoints_seen().max(1);
        for _ in 0..INJECTIONS {
            let k = rng.random_range(1..=seen);
            let gov = Arc::new(Governor::unlimited().with_injection(k));
            let opts = SolveOptions::early_exit().governed(gov.clone());
            let (found, _) = ev.boolean_opts(&db, &opts);
            if found {
                prop_assert!(complete, "aborted boolean() invented a match");
            }
            if gov.is_aborted() {
                prop_assert_eq!(gov.verdict(), Verdict::Aborted(AbortReason::Injected));
            } else {
                prop_assert_eq!(found, complete);
            }
        }
    }
}

/// Deterministic exhaustive sweep on one small instance: abort at *every*
/// checkpoint index (not a sample) and check soundness plus post-abort
/// hygiene at each — the strongest form of the property, kept cheap by a
/// fixed 6-node database.
#[test]
fn exhaustive_abort_sweep_on_fixed_instance() {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let db = random_labeled(alpha, 6, 14, 42);
    let mut a2 = db.alphabet().clone();
    let q = Crpq::build(
        &[("x", "a(a|b)*", "y"), ("y", "b+", "z")],
        &["x", "z"],
        &mut a2,
    )
    .unwrap();
    let ev = CrpqEvaluator::new(&q);
    let opts = SolveOptions::pipeline();
    let (complete, _) = ev.answers_opts(&db, &opts);

    let dry = Arc::new(Governor::unlimited());
    let _ = ev.answers_opts(&db, &opts.clone().governed(dry.clone()));
    let seen = dry.checkpoints_seen();
    assert!(seen > 0, "vacuous sweep: no checkpoints passed");

    for k in 1..=seen {
        let gov = Arc::new(Governor::unlimited().with_injection(k));
        let (partial, _) = ev.answers_opts(&db, &opts.clone().governed(gov.clone()));
        assert_eq!(gov.abort_reason(), Some(AbortReason::Injected), "k={k}");
        assert!(partial.is_subset(&complete), "k={k}: partial ⊄ complete");
        let (repeat, _) = ev.answers_opts(&db, &opts);
        assert_eq!(repeat, complete, "k={k}: post-abort re-solve diverged");
    }
}
