//! Property tests for the shared [`QueryCache`].
//!
//! The cache is a pure amortizer: over random interleavings of queries,
//! single-edge appends, batch appends, node appends, compactions, and
//! cancelled (governed) requests,
//!
//! 1. every completed cache-mediated answer must equal a cold evaluation
//!    of the same query against the database's current state — served
//!    from the answer path, the plan path, or a full miss alike;
//! 2. entries must survive appends that are provably irrelevant to them
//!    (footprint-disjoint labels, no new nodes) and must never be served
//!    stale after relevant ones; and
//! 3. aborted runs never install anything, so an abort can never make a
//!    later answer wrong (the `ReachCache` abort-hygiene discipline).

use cxrpq::core::query_text::parse_query;
use cxrpq::core::{
    AutoEvaluator, CacheConfig, CacheOutcome, EvalOptions, Governor, QueryCache, Verdict,
};
use cxrpq::graph::{Alphabet, GraphBuilder, GraphDb, NodeId, Symbol};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Debug builds pay heavily on the product searches; keep CI-debug runs
/// fast and let release runs explore more of the space.
const CASES: u32 = if cfg!(debug_assertions) { 12 } else { 32 };

/// A pool of queries with varied shapes: plain RPQ atoms, string
/// variables, a conjunctive cycle, and an arity-1 projection. All are
/// cheap on the tiny random databases below.
const QUERIES: &[&str] = &[
    "ans(x, y) <- (x) -[ (a|b)+ ]-> (y)",
    "ans(x, y) <- (x) -[ ab ]-> (y)",
    "ans(x, y) <- (x) -[ c(a|c)* ]-> (y)",
    "ans(x) <- (x) -[ z{ab}z ]-> (y)",
    "ans(x, y) <- (x) -[ ab ]-> (y), (y) -[ c ]-> (x)",
    "ans(x) <- (x) -[ a+ ]-> (y)",
];

fn random_db(rng: &mut StdRng) -> GraphDb {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut b = GraphBuilder::new(alpha);
    let n = rng.random_range(3..10usize);
    let nodes: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
    let syms: Vec<Symbol> = b.alphabet().symbols().collect();
    for _ in 0..rng.random_range(0..3 * n) {
        let u = nodes[rng.random_range(0..n)];
        let v = nodes[rng.random_range(0..n)];
        let a = syms[rng.random_range(0..syms.len())];
        b.add_edge(u, a, v);
    }
    b.freeze()
}

/// The cold oracle: parse fresh, evaluate with a fresh engine, no cache,
/// no plan seed.
fn cold_answers(db: &GraphDb, text: &str) -> BTreeSet<Vec<NodeId>> {
    let mut alphabet = db.alphabet().clone();
    let q = parse_query(text, &mut alphabet).expect("pool query parses");
    AutoEvaluator::new(&q).answers(db).value
}

fn random_node(rng: &mut StdRng, db: &GraphDb) -> NodeId {
    NodeId(rng.random_range(0..db.node_count()) as u32)
}

fn symbol(db: &GraphDb, name: &str) -> Symbol {
    db.alphabet().symbol(name).expect("alphabet has abc")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn cached_answers_equal_cold_under_interleavings(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = random_db(&mut rng);
        let cache = QueryCache::new(CacheConfig {
            shards: 2,
            capacity_per_shard: 16,
            answer_budget_bytes: 64 * 1024,
        });
        let opts = EvalOptions::default();
        let syms = ["a", "b", "c"];
        for step in 0..rng.random_range(6..18usize) {
            match rng.random_range(0..12u32) {
                // Query through the cache; whatever path served it, the
                // answers must match a cold evaluation of current state.
                0..=5 => {
                    let q = QUERIES[rng.random_range(0..QUERIES.len())];
                    let served = cache.answers(&db, q, &opts).unwrap();
                    prop_assert!(
                        matches!(served.verdict, Verdict::Complete),
                        "ungoverned run aborted (seed {seed}, step {step})"
                    );
                    prop_assert_eq!(
                        &*served.answers,
                        &cold_answers(&db, q),
                        "cached path diverged from cold via {} (seed {}, step {})",
                        served.outcome, seed, step
                    );
                }
                // Single-edge append.
                6..=7 => {
                    let a = symbol(&db, syms[rng.random_range(0..3usize)]);
                    let (u, v) = (random_node(&mut rng, &db), random_node(&mut rng, &db));
                    db.append(u, a, v);
                }
                // Batch append: one generation, several labels.
                8 => {
                    let batch: Vec<(NodeId, Symbol, NodeId)> = (0..rng.random_range(1..4usize))
                        .map(|_| {
                            (
                                random_node(&mut rng, &db),
                                symbol(&db, syms[rng.random_range(0..3usize)]),
                                random_node(&mut rng, &db),
                            )
                        })
                        .collect();
                    db.append_batch(&batch);
                }
                // New node (answer-relevant even under disjoint labels).
                9 => {
                    db.append_node();
                }
                // Compaction keeps the lineage: entries must stay valid.
                10 => {
                    db.compact();
                }
                // A cancelled governed request. It may still complete —
                // an answer hit replays the cached relation without ever
                // running the governed evaluation, and trivial queries
                // finish before any checkpoint — but a completed result
                // must be the full answer, and an aborted one must
                // install nothing (checked by every later query's
                // cold-equality assertion).
                _ => {
                    let q = QUERIES[rng.random_range(0..QUERIES.len())];
                    let gov = Arc::new(Governor::unlimited());
                    gov.cancel();
                    let r = cache.answers_governed(&db, q, &opts, gov).unwrap();
                    if matches!(r.verdict, Verdict::Complete) {
                        prop_assert_eq!(
                            &*r.answers,
                            &cold_answers(&db, q),
                            "cancelled-but-complete run diverged (seed {})", seed
                        );
                    }
                }
            }
        }
        // Final sweep: every pool query agrees with cold on the final
        // database state, whatever mix of hits the history produced.
        for q in QUERIES {
            let served = cache.answers(&db, q, &opts).unwrap();
            prop_assert_eq!(
                &*served.answers,
                &cold_answers(&db, q),
                "final sweep diverged on {:?} (seed {})", q, seed
            );
        }
    }

    #[test]
    fn entries_survive_disjoint_appends_and_die_on_relevant_ones(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let mut db = random_db(&mut rng);
        let cache = QueryCache::with_defaults();
        let opts = EvalOptions::default();
        // Footprint of this query is exactly {a, b}.
        let q = "ans(x, y) <- (x) -[ (a|b)+ ]-> (y)";
        cache.answers(&db, q, &opts).unwrap();

        // Any number of c-only appends between existing nodes is provably
        // irrelevant: the entry must survive and stay correct.
        let c = symbol(&db, "c");
        for _ in 0..rng.random_range(1..5usize) {
            let (u, v) = (random_node(&mut rng, &db), random_node(&mut rng, &db));
            db.append(u, c, v);
        }
        if rng.random_bool(0.5) {
            db.compact();
        }
        let survived = cache.answers(&db, q, &opts).unwrap();
        prop_assert_eq!(
            survived.outcome,
            CacheOutcome::AnswerHit,
            "footprint-disjoint appends must keep the entry (seed {})", seed
        );
        prop_assert_eq!(&*survived.answers, &cold_answers(&db, q));

        // A genuinely new a- or b-labeled arc overlaps the footprint: the
        // stale answers must be dropped and re-derived, never replayed.
        let hot = symbol(&db, if rng.random_bool(0.5) { "a" } else { "b" });
        let mut appended = false;
        for _ in 0..32 {
            let (u, v) = (random_node(&mut rng, &db), random_node(&mut rng, &db));
            if db.append(u, hot, v) {
                appended = true;
                break;
            }
        }
        if appended {
            let refreshed = cache.answers(&db, q, &opts).unwrap();
            prop_assert_ne!(
                refreshed.outcome,
                CacheOutcome::AnswerHit,
                "overlapping append served stale answers (seed {})", seed
            );
            prop_assert_eq!(&*refreshed.answers, &cold_answers(&db, q));
        }

        // A new node is answer-relevant even with no new arcs at all.
        cache.answers(&db, q, &opts).unwrap();
        db.append_node();
        let after_node = cache.answers(&db, q, &opts).unwrap();
        prop_assert_ne!(
            after_node.outcome,
            CacheOutcome::AnswerHit,
            "node append served stale answers (seed {})", seed
        );
        prop_assert_eq!(&*after_node.answers, &cold_answers(&db, q));
    }
}
