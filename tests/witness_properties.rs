//! Property tests for witness extraction: on randomly planted path
//! databases and a pool of single-edge/two-edge queries, every engine's
//! witness must (a) exist exactly when Boolean evaluation succeeds, and
//! (b) certify against the pattern and the independent conjunctive-match
//! oracle.

use cxrpq::core::{BoundedEvaluator, CxrpqBuilder, SimpleEvaluator, VsfEvaluator};
use cxrpq::graph::{Alphabet, GraphBuilder, GraphDb, Symbol};
use cxrpq::xregex::matcher::MatchConfig;
use proptest::prelude::*;
use std::sync::Arc;

const CASES: u32 = if cfg!(debug_assertions) { 24 } else { 96 };

/// A database made of 2–4 disjoint labelled paths over {a, b, c}.
fn db_strategy() -> impl Strategy<Value = Vec<Vec<Symbol>>> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..3, 1..=6)
            .prop_map(|v| v.into_iter().map(Symbol).collect::<Vec<Symbol>>()),
        2..=4,
    )
}

fn build_db(words: &[Vec<Symbol>]) -> GraphDb {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut db = GraphBuilder::new(alpha);
    for w in words {
        let s = db.add_node();
        let t = db.add_node();
        db.add_word_path(s, w, t);
    }
    db.freeze()
}

/// Simple-fragment query pool (all engines applicable; k = 3 is exact for
/// every definition body below, whose images never exceed 3 symbols).
const SIMPLE_QUERIES: &[&str] = &[
    "z{(a|b)+}cz",
    "z{ab|ba}cz",
    "y{a+}by",
    "z{(a|b)(a|b)}z",
    "a*z{b+}c",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// witness() is Some iff boolean(); when Some it certifies. Across the
    /// simple, vsf and bounded engines.
    #[test]
    fn witness_iff_boolean_and_certifies(
        words in db_strategy(),
        qidx in 0usize..SIMPLE_QUERIES.len(),
    ) {
        let db = build_db(&words);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", SIMPLE_QUERIES[qidx], "y")
            .build()
            .unwrap();

        let simple = SimpleEvaluator::new(&q).unwrap();
        let expected = simple.boolean(&db);
        let w_simple = simple.witness(&db);
        prop_assert_eq!(w_simple.is_some(), expected);
        if let Some(w) = &w_simple {
            prop_assert!(q.certifies(&db, w, &MatchConfig::default()).is_ok());
        }

        let vsf = VsfEvaluator::new(&q).unwrap();
        let w_vsf = vsf.witness(&db);
        prop_assert_eq!(w_vsf.is_some(), expected);
        if let Some(w) = &w_vsf {
            prop_assert!(q.certifies(&db, w, &MatchConfig::default()).is_ok());
        }

        let bounded = BoundedEvaluator::new(&q, 3);
        let w_bounded = bounded.witness(&db);
        prop_assert_eq!(w_bounded.is_some(), bounded.boolean(&db));
        if let Some(w) = &w_bounded {
            prop_assert!(q.certifies(&db, w, &MatchConfig::default()).is_ok());
            // The bounded engine reports the guessed mapping: image ≤ k.
            prop_assert!(w.images.iter().all(|(_, img)| img.len() <= 3));
        }
    }

    /// Cross-edge equality: two-edge queries sharing a variable produce
    /// witnesses whose two paths carry compatible words (the definition
    /// body's word equals every reference's word).
    #[test]
    fn cross_edge_witness_words_equal(words in db_strategy()) {
        let db = build_db(&words);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("p", "x{(a|b)+}", "q")
            .edge("r", "x", "s")
            .build()
            .unwrap();
        let simple = SimpleEvaluator::new(&q).unwrap();
        if let Some(w) = simple.witness(&db) {
            prop_assert_eq!(w.paths[0].label(), w.paths[1].label());
            prop_assert!(q.certifies(&db, &w, &MatchConfig::default()).is_ok());
            // The reported image is exactly the shared word.
            let img = &w.images.iter().find(|(n, _)| n == "x").unwrap().1;
            prop_assert_eq!(img.as_slice(), w.paths[0].label());
        }
    }

    /// Check-witnesses agree with check(): witness_for(t̄) is Some iff
    /// t̄ ∈ q(D), and the witness paths start/end at the tuple.
    #[test]
    fn witness_for_matches_check(
        words in db_strategy(),
        qidx in 0usize..SIMPLE_QUERIES.len(),
    ) {
        let db = build_db(&words);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", SIMPLE_QUERIES[qidx], "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let simple = SimpleEvaluator::new(&q).unwrap();
        // Probe the endpoints of the first planted path plus a mismatched
        // pair.
        let nodes: Vec<_> = db.nodes().collect();
        for tuple in [vec![nodes[0], nodes[1]], vec![nodes[1], nodes[0]]] {
            let member = simple.check(&db, &tuple);
            let w = simple.witness_for(&db, &tuple);
            prop_assert_eq!(w.is_some(), member);
            if let Some(w) = w {
                prop_assert_eq!(w.paths[0].start(), tuple[0]);
                prop_assert_eq!(w.paths[0].end(), tuple[1]);
            }
        }
    }
}
