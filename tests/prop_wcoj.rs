//! Differential property suite for the worst-case-optimal leapfrog
//! enumeration of cyclic query cores.
//!
//! For random CRPQs over the classic cyclic shapes — triangles, diamonds
//! (4-cycles), 4-cliques, and mixed tree+cycle patterns — and for simple
//! CXRPQs whose free-edge core is cyclic, the leapfrog intersection
//! ([`Strategy::Auto`] routing and forced [`Strategy::Leapfrog`]) must
//! return answer relations byte-for-byte identical to the forced
//! backtracker ([`Strategy::Backtrack`]) and the naive reference path, in
//! both full and projection-pushdown enumeration, and must agree on
//! `boolean()`. Deterministic cases additionally pin the routing stats
//! (cyclic cores go to leapfrog, forced backtrack performs zero
//! intersection seeks) and drive governed aborts through the leapfrog
//! loop: a run tripped mid-intersection yields a sound partial
//! under-approximation and leaves no stale state behind.

use cxrpq::core::{
    AbortReason, Crpq, CrpqEvaluator, Cxrpq, Governor, GraphPattern, PipelineStats,
    SimpleEvaluator, SolveOptions, Strategy,
};
use cxrpq::graph::{Alphabet, NodeId};
use cxrpq::workloads::graphs::random_labeled;
use cxrpq::workloads::rand_queries::{random_classical, random_simple, QueryShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Debug builds pay ~10× on the product searches; keep CI-debug runs fast
/// and let release runs explore more of the space.
const CASES: u32 = if cfg!(debug_assertions) { 8 } else { 32 };

type Solve<'a> = dyn Fn(&SolveOptions) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>) + 'a;

/// Asserts that every strategy agrees with the naive reference — full and
/// projected — and that the forced backtracker never seeks. Returns the
/// Auto-routed pipeline stats for shape-specific assertions.
fn assert_strategies_agree(solve: &Solve) -> PipelineStats {
    let (reference, _) = solve(&SolveOptions::naive());
    let auto = SolveOptions::pipeline();
    let back = SolveOptions::pipeline().with_strategy(Strategy::Backtrack);
    let leap = SolveOptions::pipeline().with_strategy(Strategy::Leapfrog);

    let (ans_auto, stats) = solve(&auto);
    assert_eq!(reference, ans_auto, "auto strategy changed the answers");
    let (ans_back, back_stats) = solve(&back);
    assert_eq!(reference, ans_back, "forced backtrack changed the answers");
    let (ans_leap, _) = solve(&leap);
    assert_eq!(reference, ans_leap, "forced leapfrog changed the answers");
    assert_eq!(
        back_stats
            .as_ref()
            .expect("planned runs report stats")
            .intersection_seeks,
        0,
        "forced backtrack must not perform intersection seeks"
    );

    for opts in [auto, back, leap] {
        let strategy = opts.strategy;
        let (projected, _) = solve(&opts.projected());
        assert_eq!(
            reference, projected,
            "projection pushdown diverged under {strategy:?}"
        );
    }
    stats.expect("planned runs report stats")
}

/// A graph pattern with the given `(src, dst)` atoms over `vars` node
/// variables, each labelled by a fresh random classical regex.
fn shaped_pattern(
    rng: &mut StdRng,
    vars: usize,
    atoms: &[(usize, usize)],
) -> GraphPattern<cxrpq::automata::Regex> {
    let mut pattern = GraphPattern::new();
    let nodes: Vec<_> = (0..vars).map(|i| pattern.node(&format!("n{i}"))).collect();
    for &(s, t) in atoms {
        pattern.add_edge(nodes[s], 0usize, nodes[t]);
    }
    pattern.map_labels(|_, _| random_classical(rng, 2, 2))
}

/// Builds a CRPQ with the given shape and output variables, then runs the
/// full strategy-agreement harness against a random multigraph. Returns
/// the Auto stats only when the analyzer left the constraint graph intact
/// — a dropped subsumed atom or a merged variable pair legitimately breaks
/// the cycle before planning, so shape assertions would be wrong there.
fn check_shape(
    seed: u64,
    vars: usize,
    atoms: &[(usize, usize)],
    outs: &[usize],
) -> Option<PipelineStats> {
    let mut rng = StdRng::seed_from_u64(seed);
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let db = random_labeled(alpha, 5, 14, seed ^ 0x0c03);
    let pattern = shaped_pattern(&mut rng, vars, atoms);
    let outputs: Vec<_> = outs
        .iter()
        .map(|&i| pattern.node_var(&format!("n{i}")).unwrap())
        .collect();
    let q = Crpq::new(pattern, outputs);
    let ev = CrpqEvaluator::new(&q);
    let stats = assert_strategies_agree(&|o| ev.answers_opts(&db, o));
    let intact = stats
        .analysis
        .as_ref()
        .is_none_or(|r| r.stats.atoms_dropped == 0 && r.stats.vars_merged == 0 && !r.stats.unsat);
    intact.then_some(stats)
}

const TRIANGLE: &[(usize, usize)] = &[(0, 1), (1, 2), (2, 0)];
const DIAMOND: &[(usize, usize)] = &[(0, 1), (1, 2), (2, 3), (3, 0)];
const CLIQUE4: &[(usize, usize)] = &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
/// Triangle core with a pendant 2-chain hanging off one corner.
const MIXED: &[(usize, usize)] = &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn triangle_strategies_agree(seed in 0u64..100_000) {
        if let Some(stats) = check_shape(seed, 3, TRIANGLE, &[0, 1]) {
            prop_assert_eq!(stats.leapfrog_components, 1);
            prop_assert_eq!(stats.tree_components, 0);
        }
    }

    #[test]
    fn diamond_strategies_agree(seed in 0u64..100_000) {
        if let Some(stats) = check_shape(seed, 4, DIAMOND, &[0, 2]) {
            prop_assert_eq!(stats.leapfrog_components, 1);
            prop_assert_eq!(stats.tree_components, 0);
        }
    }

    #[test]
    fn clique4_strategies_agree(seed in 0u64..100_000) {
        if let Some(stats) = check_shape(seed, 4, CLIQUE4, &[0, 3]) {
            prop_assert_eq!(stats.leapfrog_components, 1);
            prop_assert_eq!(stats.tree_components, 0);
        }
    }

    #[test]
    fn mixed_tree_and_cycle_strategies_agree(seed in 0u64..100_000) {
        // The pendant chain shares the triangle's full component, so the
        // whole core counts as one cyclic component with no pure tree.
        if let Some(stats) = check_shape(seed, 5, MIXED, &[0, 4]) {
            prop_assert_eq!(stats.leapfrog_components, 1);
            prop_assert_eq!(stats.tree_components, 0);
        }
    }

    /// A cyclic core next to a disjoint chain: one leapfrog component, one
    /// tree component, answers the cross product of the two.
    #[test]
    fn disjoint_cycle_and_chain_strategies_agree(seed in 0u64..100_000) {
        let atoms = &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)];
        if let Some(stats) = check_shape(seed, 6, atoms, &[0, 3]) {
            prop_assert_eq!(stats.leapfrog_components, 1);
            prop_assert_eq!(stats.tree_components, 1);
        }
    }

    /// Simple CXRPQs: string-variable atoms compile to groups plus middle
    /// edges, so the free-edge core is typically a tree — the strategies
    /// must still agree everywhere (forced leapfrog marks every constrained
    /// variable eligible and must change nothing).
    #[test]
    fn simple_cxrpq_strategies_agree(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = QueryShape { dims: 3, vars: 2, sigma: 2, alt_prob: 0.0 };
        let cx = random_simple(&mut rng, &shape);
        let mut pattern = GraphPattern::new();
        let nodes: Vec<_> = (0..3).map(|i| pattern.node(&format!("n{i}"))).collect();
        for (i, &(s, t)) in TRIANGLE.iter().enumerate() {
            pattern.add_edge(nodes[s], i, nodes[t]);
        }
        let q = Cxrpq::from_parts(pattern, cx, vec![nodes[0], nodes[1]]);
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = random_labeled(alpha, 4, 10, seed ^ 0x51e9);
        let ev = SimpleEvaluator::new(&q).expect("generated queries are simple");
        assert_strategies_agree(&|o| ev.answers_opts(&db, o));
    }
}

/// Deterministic instance dense enough that the triangle actually matches:
/// pins the routing stats end to end — Auto performs real multiway seeks,
/// forced backtrack reports the whole core as tree and never seeks — and
/// checks `boolean()` agreement on top.
#[test]
fn triangle_routes_to_leapfrog_and_counts_seeks() {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let db = random_labeled(alpha, 12, 120, 9);
    let mut a2 = db.alphabet().clone();
    let q = Crpq::build(
        &[("x", "a", "y"), ("y", "b", "z"), ("z", "c", "x")],
        &["x", "y", "z"],
        &mut a2,
    )
    .unwrap();
    let ev = CrpqEvaluator::new(&q);

    let (auto_ans, stats) = ev.answers_opts(&db, &SolveOptions::pipeline());
    let s = stats.expect("planned runs report stats");
    assert_eq!(s.leapfrog_components, 1);
    assert_eq!(s.tree_components, 0);
    assert!(
        s.intersection_seeks > 0,
        "a matching triangle must drive the leapfrog intersection"
    );

    let back = SolveOptions::pipeline().with_strategy(Strategy::Backtrack);
    let (back_ans, back_stats) = ev.answers_opts(&db, &back);
    assert_eq!(auto_ans, back_ans);
    let bs = back_stats.unwrap();
    assert_eq!(bs.leapfrog_components, 0);
    assert_eq!(bs.intersection_seeks, 0);

    let (naive_ans, _) = ev.answers_opts(&db, &SolveOptions::naive());
    assert_eq!(auto_ans, naive_ans);
    assert!(
        !auto_ans.is_empty(),
        "vacuous instance: no triangle matched"
    );

    for opts in [
        SolveOptions::early_exit(),
        SolveOptions::early_exit().with_strategy(Strategy::Backtrack),
        SolveOptions::early_exit().with_strategy(Strategy::Leapfrog),
    ] {
        assert!(ev.boolean_opts(&db, &opts).0);
    }
}

/// Governed aborts through the leapfrog loop: trip the governor at every
/// checkpoint a dry run passes and require (1) a sound partial relation,
/// (2) the `Aborted(Injected)` verdict, (3) a clean re-solve afterwards —
/// no partially-built sorted row or intersection state may leak.
#[test]
fn leapfrog_aborts_are_sound() {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let db = random_labeled(alpha, 12, 120, 9);
    let mut a2 = db.alphabet().clone();
    let q = Crpq::build(
        &[("x", "a", "y"), ("y", "b", "z"), ("z", "c", "x")],
        &["x", "y", "z"],
        &mut a2,
    )
    .unwrap();
    let ev = CrpqEvaluator::new(&q);
    let leap = SolveOptions::pipeline().with_strategy(Strategy::Leapfrog);
    let (complete, stats) = ev.answers_opts(&db, &leap);
    assert!(
        stats.unwrap().intersection_seeks > 0,
        "the sweep must actually exercise the leapfrog loop"
    );

    let dry = Arc::new(Governor::unlimited());
    let (governed, _) = ev.answers_opts(&db, &leap.clone().governed(dry.clone()));
    assert_eq!(governed, complete, "an untripped governor changed answers");
    let seen = dry.checkpoints_seen();
    assert!(seen > 0, "vacuous sweep: no checkpoints passed");

    for k in 1..=seen {
        let gov = Arc::new(Governor::unlimited().with_injection(k));
        let (partial, _) = ev.answers_opts(&db, &leap.clone().governed(gov.clone()));
        assert_eq!(gov.abort_reason(), Some(AbortReason::Injected), "k={k}");
        assert!(partial.is_subset(&complete), "k={k}: partial ⊄ complete");
        let (repeat, _) = ev.answers_opts(&db, &leap);
        assert_eq!(repeat, complete, "k={k}: post-abort re-solve diverged");
    }
}
